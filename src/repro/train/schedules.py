"""Learning-rate schedules (warmup + decay families)."""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = ["LRSchedule", "ConstantLR", "WarmupCosineLR", "WarmupLinearLR"]


class LRSchedule:
    """Maps a 0-based step index to a learning rate."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigError(f"step must be >= 0, got {step}")
        return self.lr_at(step)


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ConfigError(f"lr must be > 0, got {lr}")
        self.lr = float(lr)

    def lr_at(self, step: int) -> float:
        return self.lr


class _WarmupBase(LRSchedule):
    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0):
        if peak_lr <= 0:
            raise ConfigError(f"peak_lr must be > 0, got {peak_lr}")
        if warmup_steps < 0 or total_steps <= 0 or warmup_steps > total_steps:
            raise ConfigError(
                f"need 0 <= warmup_steps <= total_steps, got {warmup_steps}/{total_steps}"
            )
        if not 0.0 <= min_lr <= peak_lr:
            raise ConfigError("need 0 <= min_lr <= peak_lr")
        self.peak_lr = float(peak_lr)
        self.warmup_steps = int(warmup_steps)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def _warmup(self, step: int) -> float | None:
        if step < self.warmup_steps:
            return self.peak_lr * (step + 1) / max(self.warmup_steps, 1)
        return None

    def _progress(self, step: int) -> float:
        span = max(self.total_steps - self.warmup_steps, 1)
        return min((step - self.warmup_steps) / span, 1.0)


class WarmupCosineLR(_WarmupBase):
    """Linear warmup then cosine decay to ``min_lr`` (GPT-style default)."""

    def lr_at(self, step: int) -> float:
        warm = self._warmup(step)
        if warm is not None:
            return warm
        cos = 0.5 * (1.0 + math.cos(math.pi * self._progress(step)))
        return self.min_lr + (self.peak_lr - self.min_lr) * cos


class WarmupLinearLR(_WarmupBase):
    """Linear warmup then linear decay to ``min_lr``."""

    def lr_at(self, step: int) -> float:
        warm = self._warmup(step)
        if warm is not None:
            return warm
        return self.min_lr + (self.peak_lr - self.min_lr) * (1.0 - self._progress(step))
