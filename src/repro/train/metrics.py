"""Training-metrics logging: JSONL and CSV writers.

Large-scale runs live and die by their logs; this gives the examples and
CLI a uniform, append-only, crash-safe (line-buffered) format.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import ConfigError

__all__ = ["LatencyStats", "MetricsLogger", "read_jsonl"]


class LatencyStats:
    """Latency sample collector with percentile summaries.

    Serving metrics (TTFT, per-token latency) are distributions, not
    means: the p95 tail is what an SLO bounds. Samples are in (virtual)
    seconds; :meth:`summary` flattens count/mean/p50/p95/max into one
    record ready for :class:`MetricsLogger` or a benchmark table.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: list[float] = []

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"latency sample must be >= 0, got {seconds}")
        self._samples.append(float(seconds))

    def extend(self, samples: Iterable[float]) -> None:
        for s in samples:
            self.add(s)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100].

        An empty collector reports 0.0 — "no latency observed" — so
        report generators and dashboards never trip over a run with zero
        completions.
        """
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def summary(self, prefix: str = "") -> dict[str, float]:
        """Flat record: ``<prefix>count/mean/p50/p95/max``."""
        if not self._samples:
            return {f"{prefix}count": 0}
        return {
            f"{prefix}count": self.count,
            f"{prefix}mean": self.mean,
            f"{prefix}p50": self.percentile(50),
            f"{prefix}p95": self.percentile(95),
            f"{prefix}max": float(max(self._samples)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._samples:
            return f"LatencyStats({self.name!r}, empty)"
        return (
            f"LatencyStats({self.name!r}, n={self.count}, "
            f"p50={self.percentile(50):.3g}s, p95={self.percentile(95):.3g}s)"
        )


class MetricsLogger:
    """Append metric records to a JSONL or CSV file.

    The format is chosen by the file suffix (``.jsonl`` / ``.csv``). CSV
    headers are fixed by the first record; later records must use the same
    keys. Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        suffix = self.path.suffix.lower()
        if suffix not in (".jsonl", ".csv"):
            raise ConfigError(
                f"metrics file must end in .jsonl or .csv, got {self.path.name!r}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._needs_header = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a", buffering=1, newline="")
        self._format = suffix
        self._csv_writer: csv.DictWriter | None = None
        self._fieldnames: list[str] | None = None
        self._count = 0

    def log(self, record: Mapping[str, Any]) -> None:
        """Append one record (flat dict of JSON-serializable values)."""
        record = dict(record)
        if self._format == ".jsonl":
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            if self._csv_writer is None:
                self._fieldnames = sorted(record)
                self._csv_writer = csv.DictWriter(self._fh, fieldnames=self._fieldnames)
                if self._needs_header:
                    self._csv_writer.writeheader()
            header = set(self._fieldnames or [])
            keys = set(record)
            if keys != header:
                unexpected = sorted(keys - header)
                missing = sorted(header - keys)
                detail = []
                if unexpected:
                    detail.append(f"unexpected keys {unexpected}")
                if missing:
                    detail.append(f"missing keys {missing}")
                raise ConfigError(
                    "CSV record does not match the header fixed by the first "
                    f"record: {'; '.join(detail)}"
                )
            self._csv_writer.writerow(record)
        self._count += 1

    def log_context(self, context, **extra: Any) -> None:
        """Append a :class:`~repro.simmpi.RunContext` snapshot as one flat
        record (traffic totals + ``phase_<name>`` timers), merged with any
        ``extra`` key/value pairs."""
        record = dict(context.metrics_record())
        record.update(extra)
        self.log(record)

    def log_events(self, events, **extra: Any) -> int:
        """Append one record per lifecycle event (restart/backoff/...).

        ``events`` is an iterable of flat dicts as recorded by
        :meth:`~repro.simmpi.RunContext.record_event`. Event records have
        heterogeneous keys, so writing any requires a JSONL sink (CSV
        headers are fixed by the first record); an empty iterable is a
        no-op on either sink. Returns the number written.
        """
        n = 0
        for event in events:
            if self._format != ".jsonl":
                raise ConfigError(
                    "log_events needs a .jsonl sink; event records have "
                    "heterogeneous keys that a CSV header cannot hold"
                )
            record = dict(event)
            record.update(extra)
            self.log(record)
            n += 1
        return n

    @property
    def records_written(self) -> int:
        return self._count

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MetricsLogger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of a JSONL metrics file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"metrics file not found: {path}")
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
