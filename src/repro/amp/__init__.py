"""Mixed precision: dynamic loss scaling and model dtype casting."""

from repro.amp.autocast import cast_model, model_dtype
from repro.amp.scaler import DynamicLossScaler, grads_have_overflow

__all__ = ["cast_model", "model_dtype", "DynamicLossScaler", "grads_have_overflow"]
