"""Model-level precision policy: cast parameters between emulated dtypes.

BaGuaLu's mixed-precision recipe: fp16 parameters and activations for the
forward/backward compute, fp32 master weights inside the optimizer, loss
scaling to protect the fp16 gradient range. Casting here switches the
*model* side; the optimizer keeps masters automatically (see
:mod:`repro.train.optim`).
"""

from __future__ import annotations

from repro.models.module import Module
from repro.tensor import as_dtype, quantize

__all__ = ["cast_model", "model_dtype"]


def cast_model(model: Module, dtype: str) -> Module:
    """Cast every parameter of ``model`` to the emulated ``dtype`` in place.

    Returns the model for chaining. Gradients are cleared (their dtype
    would be stale).
    """
    spec = as_dtype(dtype)
    for p in model.parameters():
        p.data = quantize(p.data, spec)
        p.dtype = spec
        p.grad = None
    return model


def model_dtype(model: Module) -> str:
    """The common parameter dtype, or "mixed" when parameters disagree."""
    names = {p.dtype.name for p in model.parameters()}
    if not names:
        return "fp32"
    return names.pop() if len(names) == 1 else "mixed"
