"""Dynamic loss scaling for fp16 training.

fp16 gradients underflow (magnitudes below ~6e-8 flush to zero), so the
loss is multiplied by a large scale before backward and gradients divided
by it before the optimizer step. When any gradient overflows to inf/NaN the
step is skipped and the scale halved; after ``growth_interval`` consecutive
good steps the scale doubles. This is the exact state machine of
torch.cuda.amp / Megatron, reproduced here because our emulated fp16
genuinely overflows and underflows.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor

__all__ = ["DynamicLossScaler", "grads_have_overflow"]


def grads_have_overflow(params: Iterable[Tensor]) -> bool:
    """True if any parameter gradient contains inf or NaN."""
    for p in params:
        if p.grad is None:
            continue
        if not np.isfinite(p.grad).all():
            return True
    return False


class DynamicLossScaler:
    """The standard dynamic loss-scale controller.

    Parameters
    ----------
    init_scale:
        Starting scale (power of two recommended).
    growth_factor / backoff_factor:
        Multipliers applied on growth / overflow.
    growth_interval:
        Number of consecutive overflow-free steps before growing.
    min_scale / max_scale:
        Clamp bounds for the scale.
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        if init_scale <= 0:
            raise ConfigError(f"init_scale must be > 0, got {init_scale}")
        if growth_factor <= 1.0:
            raise ConfigError(f"growth_factor must be > 1, got {growth_factor}")
        if not 0.0 < backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be in (0,1), got {backoff_factor}")
        if growth_interval < 1:
            raise ConfigError(f"growth_interval must be >= 1, got {growth_interval}")
        if not 0 < min_scale <= init_scale <= max_scale:
            raise ConfigError("require 0 < min_scale <= init_scale <= max_scale")
        self.scale = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self._good_steps = 0
        #: Total overflow events observed (for logging).
        self.overflow_count = 0

    @property
    def inv_scale(self) -> float:
        """1/scale, the factor applied to gradients before the step."""
        return 1.0 / self.scale

    def update(self, found_overflow: bool) -> None:
        """Advance the state machine after one step attempt."""
        if found_overflow:
            self.overflow_count += 1
            self._good_steps = 0
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
        else:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self._good_steps = 0
                self.scale = min(self.max_scale, self.scale * self.growth_factor)

    def state_dict(self) -> dict[str, float]:
        """Serializable state (for checkpointing)."""
        return {
            "scale": self.scale,
            "good_steps": float(self._good_steps),
            "overflow_count": float(self.overflow_count),
        }

    def load_state_dict(self, state: dict[str, float]) -> None:
        """Restore from :meth:`state_dict`."""
        self.scale = float(state["scale"])
        self._good_steps = int(state["good_steps"])
        self.overflow_count = int(state["overflow_count"])
