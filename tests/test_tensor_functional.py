"""Fused NN operations: gradcheck + behavioural tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    cross_entropy,
    dropout,
    embedding,
    gather_rows,
    gelu,
    gradcheck,
    layer_norm,
    log_softmax,
    relu,
    scatter_rows,
    silu,
    softmax,
)

RNG = np.random.default_rng(7)


def t64(shape, scale=1.0):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True, dtype="fp64")


class TestActivations:
    def test_relu_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        gradcheck(lambda ins: relu(ins[0]), [t64((6,))], atol=1e-4)

    def test_gelu_grad(self):
        gradcheck(lambda ins: gelu(ins[0]), [t64((6,))], rtol=1e-3)

    def test_gelu_midpoint(self):
        assert gelu(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_silu_grad(self):
        gradcheck(lambda ins: silu(ins[0]), [t64((6,))], rtol=1e-3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        s = softmax(Tensor(RNG.normal(size=(4, 7))))
        assert np.allclose(s.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_stability_large_logits(self):
        s = softmax(Tensor([[1000.0, 1000.0]], dtype="fp64"))
        assert np.allclose(s.data, 0.5)

    def test_grad(self):
        gradcheck(lambda ins: softmax(ins[0]), [t64((3, 5))])

    def test_log_softmax_consistent(self):
        x = Tensor(RNG.normal(size=(2, 6)), dtype="fp64")
        assert np.allclose(np.exp(log_softmax(x).data), softmax(x).data, atol=1e-10)

    def test_log_softmax_grad(self):
        gradcheck(lambda ins: log_softmax(ins[0]), [t64((2, 4))])


class TestCrossEntropy:
    def test_uniform_logits_give_log_v(self):
        logits = Tensor(np.zeros((5, 8)), dtype="fp64")
        targets = np.arange(5) % 8
        assert cross_entropy(logits, targets).item() == pytest.approx(np.log(8))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 4), -100.0)
        logits[np.arange(3), [0, 1, 2]] = 100.0
        loss = cross_entropy(Tensor(logits, dtype="fp64"), np.array([0, 1, 2]))
        assert loss.item() < 1e-6

    def test_grad(self):
        targets = RNG.integers(0, 6, size=4)
        gradcheck(lambda ins: cross_entropy(ins[0], targets), [t64((4, 6))])

    def test_ignore_index(self):
        logits = t64((4, 5))
        targets = np.array([1, 2, -1, 3])
        loss = cross_entropy(logits, targets, ignore_index=-1)
        loss.backward()
        # The ignored row contributes no gradient.
        assert np.allclose(logits.grad[2], 0.0)

    def test_wrong_shapes(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 2, 2))), np.zeros(2, dtype=int))
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 4))), np.zeros(3, dtype=int))


class TestLayerNorm:
    def test_output_normalized(self):
        x = Tensor(RNG.normal(size=(6, 16)) * 3 + 5)
        w = Tensor(np.ones(16))
        b = Tensor(np.zeros(16))
        out = layer_norm(x, w, b).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_grads_all_inputs(self):
        x, w, b = t64((3, 8)), t64((8,)), t64((8,))
        gradcheck(lambda ins: layer_norm(ins[0], ins[1], ins[2]), [x, w, b], rtol=1e-3, atol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            layer_norm(Tensor(np.zeros((2, 4))), Tensor(np.zeros(3)), Tensor(np.zeros(4)))


class TestEmbedding:
    def test_lookup(self):
        w = Tensor(np.arange(12, dtype=np.float64).reshape(4, 3), dtype="fp64")
        out = embedding(w, np.array([2, 0]))
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_grad_scatter_adds_duplicates(self):
        w = t64((4, 2))
        ids = np.array([1, 1, 3])
        out = embedding(w, ids)
        out.backward(np.ones_like(out.data))
        assert np.allclose(w.grad[1], 2.0)
        assert np.allclose(w.grad[3], 1.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_gradcheck(self):
        ids = RNG.integers(0, 5, size=(2, 3))
        gradcheck(lambda ins: embedding(ins[0], ids), [t64((5, 3))])

    def test_out_of_range_ids(self):
        with pytest.raises(ShapeError):
            embedding(Tensor(np.zeros((3, 2))), np.array([5]))

    def test_non_integer_ids(self):
        with pytest.raises(ShapeError):
            embedding(Tensor(np.zeros((3, 2))), np.array([0.5]))


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(RNG.normal(size=(5, 5)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_p_zero_identity(self):
        x = Tensor(RNG.normal(size=(5, 5)))
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_expectation_preserved(self):
        x = Tensor(np.ones((200, 200)), dtype="fp64")
        out = dropout(x, 0.3, np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_deterministic_given_rng(self):
        x = Tensor(np.ones((10, 10)))
        a = dropout(x, 0.5, np.random.default_rng(3)).data
        b = dropout(x, 0.5, np.random.default_rng(3)).data
        assert np.array_equal(a, b)

    def test_invalid_p(self):
        with pytest.raises(ShapeError):
            dropout(Tensor(np.zeros(2)), 1.0, np.random.default_rng(0))


class TestGatherScatterRows:
    def test_gather_rows(self):
        x = Tensor(np.arange(8, dtype=np.float64).reshape(4, 2), dtype="fp64")
        out = gather_rows(x, np.array([3, 0, 3]))
        assert np.allclose(out.data, [[6, 7], [0, 1], [6, 7]])

    def test_gather_grad_accumulates(self):
        x = t64((4, 2))
        idx = np.array([1, 1, 2])
        gradcheck(lambda ins: gather_rows(ins[0], idx), [x])

    def test_scatter_rows(self):
        src = Tensor(np.ones((3, 2)), dtype="fp64")
        out = scatter_rows(src, np.array([0, 0, 2]), num_rows=4)
        assert np.allclose(out.data, [[2, 2], [0, 0], [1, 1], [0, 0]])

    def test_scatter_grad(self):
        src = t64((3, 2))
        idx = np.array([0, 2, 2])
        gradcheck(lambda ins: scatter_rows(ins[0], idx, 4), [src])

    def test_scatter_gather_inverse(self):
        """scatter(gather(x, idx), idx) == x when idx is a permutation."""
        x = t64((5, 3))
        perm = np.random.default_rng(0).permutation(5)
        y = scatter_rows(gather_rows(x, perm), perm, 5)
        assert np.allclose(y.data, x.data)

    def test_scatter_bad_idx_shape(self):
        with pytest.raises(ShapeError):
            scatter_rows(Tensor(np.zeros((3, 2))), np.zeros((2,), dtype=int), 4)
