"""Calibration of the machine model against measured runs."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware import laptop_machine, sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.network import sunway_network
from repro.perf import (
    CalibrationResult,
    ParallelPlan,
    StepModel,
    calibrate_efficiency,
)

CFG = bagualu_14_5t()
MACHINE = sunway_machine(1024)
NET = sunway_network(1024)
PLAN = ParallelPlan(num_nodes=1024, ep_size=1024, micro_batch=1, seq_len=2048)


class TestClosedFormFit:
    def test_recovers_known_efficiency(self):
        """Fitting against the model's own output recovers the truth."""
        for truth in (0.1, 0.25, 0.6):
            m = sunway_machine(1024, compute_efficiency=truth)
            measured = StepModel(CFG, m, NET).step_time(PLAN)
            fit = calibrate_efficiency(CFG, MACHINE, NET, PLAN, measured)
            assert fit.efficiency == pytest.approx(truth, rel=1e-6)
            assert fit.relative_error < 1e-9

    def test_fitted_machine_carried(self):
        measured = StepModel(CFG, MACHINE, NET).step_time(PLAN)
        fit = calibrate_efficiency(CFG, MACHINE, NET, PLAN, measured)
        assert isinstance(fit, CalibrationResult)
        assert fit.machine.compute_efficiency == pytest.approx(fit.efficiency)
        assert fit.machine.num_nodes == MACHINE.num_nodes

    def test_slower_measurement_lower_efficiency(self):
        base = StepModel(CFG, MACHINE, NET).step_time(PLAN)
        fast = calibrate_efficiency(CFG, MACHINE, NET, PLAN, base)
        slow = calibrate_efficiency(CFG, MACHINE, NET, PLAN, base * 2)
        assert slow.efficiency < fast.efficiency

    def test_clamped_to_bounds(self):
        # Absurdly slow measurement -> clamp at min_efficiency.
        fit = calibrate_efficiency(CFG, MACHINE, NET, PLAN, 1e9, min_efficiency=0.05)
        assert fit.efficiency == 0.05

    def test_below_comm_floor_rejected(self):
        with pytest.raises(ConfigError, match="communication floor"):
            calibrate_efficiency(CFG, MACHINE, NET, PLAN, 1e-9)

    def test_nonpositive_measurement_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_efficiency(CFG, MACHINE, NET, PLAN, 0.0)

    def test_overlapped_plan_rejected(self):
        plan = ParallelPlan(num_nodes=1024, ep_size=1024, micro_batch=1,
                            seq_len=2048, overlap=0.5)
        with pytest.raises(ConfigError, match="overlap"):
            calibrate_efficiency(CFG, MACHINE, NET, plan, 1.0)


class TestEndToEndCalibration:
    def test_calibrate_from_simmpi_measurement(self):
        """Measure a small run through the runtime, fit, and check the
        fitted model reproduces the measurement."""
        from repro.parallel import TrainingRunConfig, run_distributed_training

        cfg = tiny_config(num_experts=8)
        world = 8
        machine = laptop_machine(world)
        net = sunway_network(world, supernode_size=4)
        run = run_distributed_training(
            TrainingRunConfig(model=cfg, world_size=world, ep_size=world,
                              num_steps=2, batch_size=4, seq_len=16),
            network=net, machine=machine,
        )
        plan = ParallelPlan(num_nodes=world, ep_size=8, micro_batch=4, seq_len=16)
        fit = calibrate_efficiency(cfg, machine, net, plan, run.step_time)
        # The fit reproduces the measurement by construction...
        assert fit.relative_error < 1e-6
        # ...and lands near the machine's true sustained factor (the
        # measured run used the same ComputeTimer; gaps come from gradient
        # sync details the analytic model simplifies).
        assert 0.05 <= fit.efficiency <= 1.0
