"""Analytic performance model: FLOPs, memory, step model, sweeps, and the
measured-vs-projected calibration check."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.network import sunway_network
from repro.perf import (
    ComputeTimer,
    ParallelPlan,
    StepModel,
    forward_flops_per_token,
    node_memory,
    step_flops,
    step_flops_per_token,
    strong_scaling_rows,
    weak_scaling_rows,
)

CFG = bagualu_14_5t()
MACHINE = sunway_machine(96_000)
NET = sunway_network(96_000)


def plan(**kw):
    defaults = dict(num_nodes=96_000, ep_size=96_000, micro_batch=1, seq_len=2048)
    defaults.update(kw)
    return ParallelPlan(**defaults)


class TestFlops:
    def test_forward_dominated_by_active_params(self):
        f = forward_flops_per_token(CFG, 2048)
        assert f >= 2 * CFG.active_params_per_token

    def test_step_is_3x_forward(self):
        assert step_flops_per_token(CFG, 128) == pytest.approx(
            3 * forward_flops_per_token(CFG, 128)
        )

    def test_step_flops_linear_in_tokens(self):
        assert step_flops(CFG, 2000) == pytest.approx(2 * step_flops(CFG, 1000))

    def test_moe_cheaper_than_dense_equivalent(self):
        """Core MoE premise: FLOPs/token ~ active params << total params."""
        f = forward_flops_per_token(CFG, 2048)
        assert f < 2 * CFG.total_params / 100

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            forward_flops_per_token(CFG, 0)
        with pytest.raises(ConfigError):
            step_flops(CFG, -1)


class TestParallelPlan:
    def test_tokens_accounting(self):
        p = plan(micro_batch=2)
        assert p.tokens_per_rank == 4096
        assert p.global_tokens == 4096 * 96_000

    def test_ep_grouping(self):
        p = plan(ep_size=250, num_nodes=1000)
        assert p.num_ep_groups == 4

    def test_ep_must_divide_nodes(self):
        with pytest.raises(ConfigError):
            plan(num_nodes=10, ep_size=3)

    def test_ep_cannot_exceed_instances(self):
        small = tiny_config()  # 2 layers x 4 experts = 8 instances
        p = ParallelPlan(num_nodes=16, ep_size=16, seq_len=16)
        with pytest.raises(ConfigError):
            p.validate_against(small)

    def test_seq_len_bounded_by_model(self):
        with pytest.raises(ConfigError):
            plan(seq_len=4096).validate_against(CFG)

    def test_expert_instances_per_rank(self):
        p = plan()
        per = p.expert_instances_per_rank(CFG)
        assert per == pytest.approx(48 * 2250 / 96_000)

    def test_imbalance_must_be_at_least_one(self):
        with pytest.raises(ConfigError):
            plan(load_imbalance=0.9)


class TestMemory:
    def test_moda_fits_class_of_node(self):
        """T4 shape: sharded experts keep per-node params ~ O(10 GB)."""
        mem = node_memory(CFG, plan())
        assert mem.expert_params < 1e9  # sharded over the whole machine
        assert mem.params < 20e9

    def test_replicated_experts_infeasible(self):
        """T4 shape: replicating 14.5T params needs ~ 29 TB per node."""
        mem = node_memory(CFG, plan(), replicate_experts=True)
        assert mem.expert_params > 20e12

    def test_zero_shards_reduce_optimizer_state(self):
        full = node_memory(CFG, plan(zero_shards=1))
        shard = node_memory(CFG, plan(zero_shards=8))
        assert shard.optimizer_state == pytest.approx(full.optimizer_state / 8)
        assert shard.params == full.params

    def test_activation_scales_with_batch(self):
        a = node_memory(CFG, plan(micro_batch=1))
        b = node_memory(CFG, plan(micro_batch=4))
        assert b.activations == pytest.approx(4 * a.activations)

    def test_breakdown_total(self):
        mem = node_memory(CFG, plan())
        assert mem.total == pytest.approx(
            mem.params + mem.gradients + mem.optimizer_state + mem.activations
        )
        assert set(mem.as_dict()) == {
            "dense_params", "expert_params", "gradients",
            "optimizer_state", "activations", "total",
        }


class TestStepModel:
    def test_breakdown_positive(self):
        sm = StepModel(CFG, MACHINE, NET)
        bd = sm.step_breakdown(plan())
        assert bd.dense_compute > 0
        assert bd.expert_compute > 0
        assert bd.alltoall > 0
        assert bd.dense_allreduce > 0
        assert bd.expert_allreduce == 0.0  # single EP group spans machine
        assert bd.total == pytest.approx(bd.compute + bd.communication)

    def test_headline_mixed_precision_exaflops(self):
        """T2 shape: sustained mixed-precision ~ 1 EFLOPS at 96k nodes
        (paper: 1.18 EFLOPS)."""
        sm = StepModel(CFG, MACHINE, NET)
        achieved = sm.achieved_flops(plan(micro_batch=8, load_imbalance=1.05))
        assert 0.6e18 < achieved < 2.5e18

    def test_fp32_below_mixed_precision(self):
        """T2 shape: fp32 peak is half the fp16 peak on this machine."""
        sm16 = StepModel(CFG, MACHINE, NET)
        cfg32 = CFG.scaled(dtype="fp32")
        sm32 = StepModel(cfg32, MACHINE, NET)
        p = plan(micro_batch=8)
        assert sm32.achieved_flops(p) < sm16.achieved_flops(p)

    def test_imbalance_slows_step(self):
        sm = StepModel(CFG, MACHINE, NET)
        balanced = sm.step_time(plan(load_imbalance=1.0))
        skewed = sm.step_time(plan(load_imbalance=2.0))
        assert skewed > balanced

    def test_hierarchical_alltoall_beats_flat_at_scale(self):
        """F3 shape transfers to full training steps."""
        sm = StepModel(CFG, MACHINE, NET)
        flat = sm.alltoall_time(plan(alltoall="flat"))
        hier = sm.alltoall_time(plan(alltoall="hierarchical"))
        assert hier < flat

    def test_plan_larger_than_machine_rejected(self):
        sm = StepModel(CFG, sunway_machine(100), sunway_network(100))
        with pytest.raises(ConfigError):
            sm.step_time(plan(num_nodes=200, ep_size=200))

    def test_parallel_efficiency_below_one(self):
        sm = StepModel(CFG, MACHINE, NET)
        eff = sm.parallel_efficiency(plan(micro_batch=4))
        assert 0.0 < eff <= 1.0


class TestSweeps:
    def test_weak_scaling_near_linear(self):
        """F1 shape: MoDa weak-scales at >85% efficiency to 96k nodes."""
        rows = weak_scaling_rows(
            CFG, MACHINE, [256, 4096, 96_000], ep_size=96_000, micro_batch=8,
            seq_len=2048,
        )
        assert rows[0]["efficiency"] == 1.0
        assert rows[-1]["efficiency"] > 0.85
        assert rows[-1]["flops"] > rows[0]["flops"] * 100

    def test_weak_scaling_cores_column(self):
        rows = weak_scaling_rows(CFG, MACHINE, [96_000], ep_size=96_000, seq_len=2048)
        assert rows[0]["cores"] == 96_000 * 390

    def test_strong_scaling_speedup(self):
        """F2 shape: fixed problem speeds up, sublinearly at the tail."""
        rows = strong_scaling_rows(
            CFG, MACHINE, [1024, 4096, 16384], ep_size=1024,
            global_batch_tokens=2048 * 16384, seq_len=2048,
        )
        times = [r["step_time_s"] for r in rows]
        assert times[0] > times[1] > times[2]
        assert all(0 < r["speedup_vs_linear"] <= 1.5 for r in rows)


class TestComputeTimer:
    def test_dense_time_linear_in_tokens(self):
        t = ComputeTimer(CFG, MACHINE, 2048)
        assert t.dense_step_time(2000) == pytest.approx(2 * t.dense_step_time(1000))

    def test_expert_time_linear_in_rows(self):
        t = ComputeTimer(CFG, MACHINE, 2048)
        assert t.expert_layer_time(64) == pytest.approx(2 * t.expert_layer_time(32))

    def test_consistency_with_step_model(self):
        """Calibration: ComputeTimer phases reassemble the StepModel's
        compute estimate (same machine, same config)."""
        sm = StepModel(CFG, MACHINE, NET)
        p = plan(micro_batch=1)
        bd = sm.step_breakdown(p)
        t = ComputeTimer(CFG, MACHINE, p.seq_len)
        dense = t.dense_step_time(p.tokens_per_rank)
        # Per-rank rows per layer = tokens * top_k (uniform routing).
        expert = CFG.num_moe_layers * t.expert_layer_time(p.tokens_per_rank * CFG.top_k)
        assert dense == pytest.approx(bd.dense_compute, rel=1e-6)
        assert expert == pytest.approx(bd.expert_compute, rel=1e-6)
