"""Windowed signals, burn-rate SLO alerting, and the fleet autoscaler.

The load-bearing guarantees:

* windowed aggregation (tumbling / sliding / streaming-quantile) is pure
  arithmetic on virtual timestamps — matches numpy on buffered data and
  tolerates the out-of-order settling a fleet produces;
* the multi-window burn-rate monitor fires only on sustained burn (long
  AND short window over threshold, enough samples) and resolves when the
  bleeding stops, recording each transition exactly once;
* the autoscaler's threshold/hysteresis/cooldown policy is deterministic
  on those signals, and an autoscaled fleet loses no request silently;
* exporter output (``to_prometheus`` / ``registry_records``) over a
  fleet run is byte-stable across identical runs and carries the
  per-replica router gauges.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import tiny_config
from repro.obs import (
    SlidingWindow,
    SLOMonitor,
    SLOObjective,
    slo_report,
    to_prometheus,
    tumbling_windows,
)
from repro.obs.export import registry_records
from repro.obs.slo import BurnRateWindow, default_burn_windows
from repro.obs.timeseries import StreamingQuantile, tumbling_rates
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    FleetConfig,
    ServeConfig,
    run_fleet_serving,
)
from repro.simmpi import RunContext

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

CFG = tiny_config()


def _serve_cfg(**kw):
    base = dict(model=CFG, ep_size=2, num_requests=6, prompt_len=4,
                prompt_len_max=7, max_new_tokens=5, max_batch_size=3,
                seed=0, observe=True)
    base.update(kw)
    return ServeConfig(**base)


# --------------------------------------------------------------------- #
# Tumbling windows
# --------------------------------------------------------------------- #


class TestTumblingWindows:
    def test_matches_numpy_per_bucket(self):
        rng = np.random.default_rng(3)
        stamped = [(float(t), float(v))
                   for t, v in zip(np.sort(rng.uniform(0, 10, 200)),
                                   rng.normal(5, 2, 200))]
        windows = tumbling_windows(stamped, width=2.5, t_end=10.0)
        assert len(windows) == 4
        for w in windows:
            values = [v for t, v in stamped if w.start <= t < w.end]
            assert w.count == len(values)
            assert w.p95 == pytest.approx(np.percentile(values, 95))
            assert w.mean == pytest.approx(np.mean(values))
            assert w.rate == pytest.approx(len(values) / 2.5)

    def test_empty_buckets_stay_visible(self):
        windows = tumbling_windows([(0.5, 1.0), (8.5, 2.0)], width=1.0,
                                   t_end=10.0)
        assert len(windows) == 10
        assert [w.count for w in windows] == [1, 0, 0, 0, 0, 0, 0, 0, 1, 0]
        assert windows[1].p95 == 0.0

    def test_rates_integrate_counter_marks(self):
        marks = [(0.1, 5.0), (0.9, 5.0), (1.5, 20.0)]
        rates = tumbling_rates(marks, width=1.0, t_end=2.0)
        assert rates == [(0.0, 1.0, 10.0), (1.0, 2.0, 20.0)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            tumbling_windows([], width=0.0)
        with pytest.raises(ConfigError):
            tumbling_windows([], width=1.0, t0=5.0, t_end=5.0)


# --------------------------------------------------------------------- #
# Sliding window
# --------------------------------------------------------------------- #


class TestSlidingWindow:
    def test_trailing_view_drops_expired(self):
        win = SlidingWindow(1.0)
        for t in (0.0, 0.5, 1.0, 1.5):
            win.observe(t, t)
        assert win.window(1.5) == [1.0, 1.5]  # (0.5, 1.5]
        assert win.count(1.5) == 2
        assert win.sum(1.5) == 2.5
        assert win.rate(1.5) == 2.0

    def test_out_of_order_insert_lands_sorted(self):
        win = SlidingWindow(10.0)
        win.observe(1.0, 1.0)
        win.observe(3.0, 3.0)
        win.observe(2.0, 2.0)  # late settle from another replica
        assert win.window(3.0) == [1.0, 2.0, 3.0]

    def test_insert_before_expired_boundary_stays_expired(self):
        win = SlidingWindow(1.0)
        win.observe(0.0, 1.0)
        win.observe(5.0, 2.0)
        assert win.window(5.0) == [2.0]  # t=0 expired
        win.observe(0.5, 99.0)  # older than the expired boundary
        assert win.window(5.0) == [2.0]

    def test_quantile_matches_numpy(self):
        win = SlidingWindow(100.0)
        values = [float(v) for v in np.random.default_rng(0).normal(0, 1, 50)]
        for i, v in enumerate(values):
            win.observe(float(i), v)
        assert win.quantile(95, 49.0) == pytest.approx(
            np.percentile(values, 95)
        )
        assert win.mean(49.0) == pytest.approx(np.mean(values))

    def test_empty_window_is_zero(self):
        win = SlidingWindow(1.0)
        assert win.count(5.0) == 0
        assert win.quantile(95, 5.0) == 0.0
        assert win.sum(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SlidingWindow(0.0)
        with pytest.raises(ConfigError):
            SlidingWindow(1.0).quantile(101, 0.0)


class TestStreamingQuantile:
    def test_exact_below_five_samples(self):
        sq = StreamingQuantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sq.observe(v)
        assert sq.value == 2.0

    def test_tracks_p95_of_a_long_stream(self):
        values = np.random.default_rng(1).normal(10, 3, 5000)
        sq = StreamingQuantile(0.95)
        for v in values:
            sq.observe(v)
        assert sq.value == pytest.approx(np.percentile(values, 95), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StreamingQuantile(1.0)


# --------------------------------------------------------------------- #
# Burn-rate SLO monitor
# --------------------------------------------------------------------- #


def _monitor(**kw):
    base = dict(
        objective=SLOObjective(name="ttft", threshold_s=0.1, target=0.9,
                               tier=0),
        windows=(BurnRateWindow(window_s=12.0, threshold=2.0,
                                severity="page"),),
        min_samples=3,
    )
    base.update(kw)
    return SLOMonitor(**base)


class TestSLOMonitor:
    def test_objective_validation(self):
        with pytest.raises(ConfigError):
            SLOObjective(name="x", threshold_s=0.0)
        with pytest.raises(ConfigError):
            SLOObjective(name="x", threshold_s=0.1, target=1.0)
        with pytest.raises(ConfigError):
            BurnRateWindow(window_s=1.0, threshold=0.0)
        with pytest.raises(ConfigError):
            default_burn_windows(0.0)
        with pytest.raises(ConfigError):
            SLOMonitor(SLOObjective(name="x", threshold_s=0.1), windows=())

    def test_default_ladder_scales_with_horizon(self):
        page, ticket, notice = default_burn_windows(7200.0)
        assert (page.window_s, page.threshold) == (10.0, 14.4)
        assert (ticket.window_s, ticket.threshold) == (60.0, 6.0)
        assert (notice.window_s, notice.threshold) == (720.0, 1.0)
        assert page.short_window_s == pytest.approx(10.0 / 12)

    def test_tier_scoping_ignores_other_traffic(self):
        mon = _monitor()
        assert mon.observe(0.0, 99.0, tier=1)  # out of scope -> "good"
        assert mon.total == 0
        assert not mon.observe(1.0, 99.0, tier=0)
        assert mon.bad_total == 1

    def test_burn_rate_is_budget_multiple(self):
        mon = _monitor()
        for i in range(8):
            mon.observe(float(i), 0.05, tier=0)  # good
        mon.observe(8.0, 0.5, tier=0)  # bad
        mon.observe(9.0, 0.5, tier=0)  # bad
        # 2 bad / 10 samples = 0.2 bad fraction over a 0.1 budget.
        assert mon.burn_rate(9.0, 12.0) == pytest.approx(2.0)

    def test_fires_only_with_sustained_burn_and_samples(self):
        mon = _monitor()
        mon.observe(0.0, 0.5, tier=0)
        assert mon.evaluate(0.0) == []  # 1 sample < min_samples
        mon.observe(1.0, 0.5, tier=0)
        mon.observe(2.0, 0.5, tier=0)
        fired = mon.evaluate(2.0)
        assert [f["kind"] for f in fired] == ["slo_alert"]
        assert fired[0]["severity"] == "page"
        assert fired[0]["burn_long"] > 2.0
        # Idempotent while the state holds.
        assert mon.evaluate(2.5) == []

    def test_resolves_when_short_window_drains(self):
        mon = _monitor()
        for i in range(3):
            mon.observe(float(i), 0.5, tier=0)
        assert mon.evaluate(2.0)
        # Good traffic floods in; the burn drops under threshold.
        for i in range(20):
            mon.observe(2.1 + i * 0.1, 0.01, tier=0)
        resolved = mon.evaluate(4.1)
        assert [r["kind"] for r in resolved] == ["slo_resolve"]
        summary = mon.summary()
        assert summary["alerts_fired"] == 1
        assert summary["alerts_resolved"] == 1

    def test_transitions_land_on_the_context(self):
        context = RunContext(observe=True)
        mon = _monitor()
        for i in range(3):
            mon.observe(float(i), 0.5, tier=0)
        mon.evaluate(2.0, context)
        events = [e for e in context.events if e["kind"] == "slo_alert"]
        assert len(events) == 1 and events[0]["slo"] == "ttft"
        assert len(context.spans.find(kind="slo")) == 1

    def test_report_is_byte_stable(self):
        def build():
            mon = _monitor()
            for i in range(3):
                mon.observe(float(i), 0.5, tier=0)
            mon.evaluate(2.0)
            return slo_report([mon])
        text = build()
        assert text == build()
        assert "slo_alert" in text and "burn_long" in text


# --------------------------------------------------------------------- #
# Autoscaler policy
# --------------------------------------------------------------------- #


def _policy(**kw):
    base = dict(min_replicas=1, max_replicas=4, ttft_slo_s=0.1,
                signal_window_s=10.0, cooldown_s=5.0, spawn_delay_s=1.0,
                min_samples=2, queue_high=4.0, queue_low=1.0,
                scale_up_frac=0.9, scale_down_frac=0.4)
    base.update(kw)
    return AutoscalerConfig(**base)


class TestAutoscalerConfig:
    def test_pinned_range_is_legal(self):
        cfg = _policy(min_replicas=2, max_replicas=2)
        assert cfg.min_replicas == cfg.max_replicas == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            _policy(min_replicas=0)
        with pytest.raises(ConfigError):
            _policy(min_replicas=3, max_replicas=2)
        with pytest.raises(ConfigError):
            _policy(ttft_slo_s=0.0)
        with pytest.raises(ConfigError):
            _policy(scale_down_frac=0.9, scale_up_frac=0.4)
        with pytest.raises(ConfigError):
            _policy(queue_low=4.0, queue_high=4.0)
        with pytest.raises(ConfigError):
            _policy(dispatch_window_s=0.0)


class TestAutoscalerPolicy:
    def test_scales_up_on_windowed_p95(self):
        scaler = Autoscaler(_policy())
        scaler.observe_ttft(0.0, 0.2, tier=0)
        scaler.observe_ttft(1.0, 0.3, tier=0)
        decision = scaler.decide(1.0, active=1, backlog=0)
        assert decision["action"] == "up"
        assert "ttft_p95" in decision["reason"]

    def test_scales_up_on_backlog(self):
        scaler = Autoscaler(_policy())
        decision = scaler.decide(0.0, active=2, backlog=20)
        assert decision["action"] == "up"
        assert "backlog" in decision["reason"]

    def test_needs_min_samples_before_trusting_p95(self):
        scaler = Autoscaler(_policy())
        scaler.observe_ttft(0.0, 0.5, tier=0)  # one terrible sample
        assert scaler.decide(0.0, active=1, backlog=0)["action"] == "hold"

    def test_other_tiers_do_not_feed_the_signal(self):
        scaler = Autoscaler(_policy())
        scaler.observe_ttft(0.0, 0.5, tier=1)
        scaler.observe_ttft(1.0, 0.5, tier=1)
        assert scaler.decide(1.0, active=1, backlog=0)["action"] == "hold"

    def test_cooldown_gates_consecutive_decisions(self):
        scaler = Autoscaler(_policy(cooldown_s=5.0))
        assert scaler.decide(0.0, active=1, backlog=20)["action"] == "up"
        held = scaler.decide(2.0, active=2, backlog=20)
        assert held["action"] == "hold" and held["reason"] == "cooldown"
        assert scaler.decide(6.0, active=2, backlog=20)["action"] == "up"

    def test_scale_down_needs_both_calm_signals(self):
        scaler = Autoscaler(_policy())
        # Idle backlog but no TTFT samples: n == 0 counts as calm.
        assert scaler.decide(0.0, active=3, backlog=0)["action"] == "down"
        scaler2 = Autoscaler(_policy())
        scaler2.observe_ttft(0.0, 0.09, tier=0)  # p95 above down_frac * slo
        scaler2.observe_ttft(1.0, 0.09, tier=0)
        assert scaler2.decide(1.0, active=3, backlog=0)["action"] == "hold"

    def test_clamped_to_the_replica_range(self):
        scaler = Autoscaler(_policy(max_replicas=2))
        assert scaler.decide(0.0, active=2, backlog=50)["action"] == "hold"
        pinned = Autoscaler(_policy(min_replicas=2, max_replicas=2))
        assert pinned.decide(0.0, active=2, backlog=50)["action"] == "hold"
        assert pinned.decide(5.0, active=2, backlog=0)["action"] == "hold"


# --------------------------------------------------------------------- #
# Autoscaled fleet, end to end
# --------------------------------------------------------------------- #


def _burst_fleet(ceiling, **kw):
    """A ramp that floods a one-replica fleet mid-run."""
    scale = AutoscalerConfig(
        min_replicas=1, max_replicas=ceiling, ttft_slo_s=0.05,
        signal_window_s=0.05, cooldown_s=0.005, spawn_delay_s=0.002,
        dispatch_window_s=0.02, queue_high=2.0, queue_low=0.25,
        scale_up_frac=0.5, scale_down_frac=0.05, min_samples=2,
    )
    base = dict(
        serve=_serve_cfg(
            num_requests=12,
            arrival_ramp=((0.0, 50.0), (0.08, 2000.0)),
        ),
        replicas=1, max_rounds=2048, autoscale=scale,
        slos=(SLOObjective(name="premium-ttft", threshold_s=0.05,
                           metric="ttft", tier=0),),
        slo_horizon_s=2.0,
    )
    base.update(kw)
    return FleetConfig(**base)


class TestFleetAutoscale:
    def test_burst_triggers_scale_up_and_loses_nothing(self):
        fleet = run_fleet_serving(_burst_fleet(ceiling=4))
        assert fleet.scale_ups >= 1
        assert fleet.replicas_final >= 2
        states = {r["rid"]: r["state"] for r in fleet.requests}
        assert sorted(states) == list(range(12))
        assert all(s in ("done", "evicted", "shed") for s in states.values())
        kinds = {e["kind"] for e in fleet.context.events}
        assert "scale_up" in kinds
        assert fleet.context.spans.find(kind="autoscale")

    def test_pinned_policy_never_scales(self):
        fleet = run_fleet_serving(_burst_fleet(ceiling=1))
        assert fleet.scale_ups == 0 and fleet.scale_downs == 0
        assert fleet.replicas_final == 1
        assert {r["rid"] for r in fleet.requests} == set(range(12))

    def test_autoscaled_run_is_deterministic(self):
        def signature():
            fleet = run_fleet_serving(_burst_fleet(ceiling=4))
            return (
                fleet.scale_ups,
                fleet.scale_downs,
                fleet.simulated_time,
                tuple((r["rid"], r["state"], r["latency"])
                      for r in fleet.requests),
                tuple(tuple(sorted(a.items())) for m in fleet.slo
                      for a in m.alerts),
            )
        assert signature() == signature()

    def test_scale_metadata_in_metrics_record(self):
        fleet = run_fleet_serving(_burst_fleet(ceiling=4))
        record = fleet.metrics_record()
        assert record["scale_ups"] == fleet.scale_ups
        assert record["replicas_final"] == fleet.replicas_final


# --------------------------------------------------------------------- #
# Exporter byte-stability over fleet runs (S3)
# --------------------------------------------------------------------- #


class TestExporterStability:
    def _run(self):
        return run_fleet_serving(
            FleetConfig(serve=_serve_cfg(arrival_rate=200.0), replicas=2)
        )

    def test_prometheus_and_records_are_byte_stable(self):
        a, b = self._run(), self._run()
        assert to_prometheus(a.context.metrics) == to_prometheus(
            b.context.metrics
        )
        assert registry_records(a.context.metrics) == registry_records(
            b.context.metrics
        )

    def test_router_gauges_are_exported_per_replica(self):
        text = to_prometheus(self._run().context.metrics)
        for gauge in ("fleet_router_outstanding", "fleet_router_healthy",
                      "fleet_router_replicas"):
            assert f"repro_{gauge}" in text
        assert 'replica="0"' in text and 'replica="1"' in text

    def test_span_records_reach_the_run_report_stream(self):
        from repro.obs import collect_run_records

        fleet = self._run()
        records = collect_run_records(fleet.context)
        spans = [r for r in records if r.get("record") == "span"]
        assert spans and all("span_id" in r for r in spans)
