"""Property-based tests: simulated collectives vs NumPy reference semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simmpi import MAX, MIN, SUM, payload_nbytes, clone_payload, run_spmd

sizes = st.integers(min_value=1, max_value=6)
payload_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=8
)


@given(sizes, st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_allreduce_matches_numpy_sum(size, base):
    def program(comm):
        x = np.arange(4, dtype=np.float64) + comm.rank + base
        return comm.allreduce(x, op=SUM)

    res = run_spmd(program, size)
    expected = sum(np.arange(4, dtype=np.float64) + r + base for r in range(size))
    for out in res.returns:
        assert np.allclose(out, expected)


@given(sizes)
@settings(max_examples=10, deadline=None)
def test_allgather_matches_identity(size):
    res = run_spmd(lambda c: c.allgather(c.rank), size)
    for out in res.returns:
        assert out == list(range(size))


@given(sizes, st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_alltoall_is_transpose(size, seed):
    """alltoall(alltoall(M)) with symmetric pattern == matrix transpose."""

    def program(comm):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, size=(size, size))
        row = list(matrix[comm.rank])
        got = comm.alltoall(row)
        return got, list(matrix[:, comm.rank])

    res = run_spmd(program, size)
    for got, expected_col in res.returns:
        assert [int(g) for g in got] == [int(e) for e in expected_col]


@given(sizes)
@settings(max_examples=10, deadline=None)
def test_alltoall_roundtrip_identity(size):
    """Sending data out and alltoall-ing it back restores the original."""

    def program(comm):
        orig = [np.full(3, comm.rank * comm.size + d) for d in range(comm.size)]
        there = comm.alltoall(orig)
        back = comm.alltoall(there)
        # back[d] came from rank d and contains what rank d got from me,
        # which is what I originally addressed to d.
        return all(np.array_equal(back[d], orig[d]) for d in range(comm.size))

    res = run_spmd(program, size)
    assert all(res.returns)


@given(sizes, st.sampled_from([SUM, MAX, MIN]))
@settings(max_examples=15, deadline=None)
def test_reduce_consistent_with_allreduce(size, op):
    def program(comm):
        v = (comm.rank + 3) * 7 % 11
        return comm.reduce(v, op=op, root=0), comm.allreduce(v, op=op)

    res = run_spmd(program, size)
    root_reduce = res.returns[0][0]
    for out in res.returns:
        assert out[1] == root_reduce


@given(payload_lists)
@settings(max_examples=25, deadline=None)
def test_clone_payload_deep_copies_lists(values):
    src = [np.asarray(values), {"k": values}]
    dst = clone_payload(src)
    assert np.allclose(dst[0], src[0])
    dst[0][0] = 1e9
    assert src[0][0] != 1e9 or values[0] == 1e9


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_payload_nbytes_ndarray_exact(n):
    arr = np.zeros(min(n, 1000), dtype=np.float32)
    assert payload_nbytes(arr) == arr.nbytes


def test_payload_nbytes_structures():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes("ab") == 2
    assert payload_nbytes(3.14) == 8
    assert payload_nbytes([1, 2]) == 8 + 16
    assert payload_nbytes({"a": 1}) == 8 + 1 + 8
