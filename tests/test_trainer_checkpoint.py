"""Single-process trainer: convergence, fp16 protocol, checkpoint round-trip."""

import numpy as np
import pytest

from repro.amp import DynamicLossScaler, cast_model
from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import CheckpointError, ConfigError
from repro.models import build_model, tiny_config
from repro.train import (
    Adam,
    ConstantLR,
    Trainer,
    WarmupCosineLR,
    load_checkpoint,
    save_checkpoint,
)


def make_setup(seed=1, dtype=None, scaler=None, lr=3e-3):
    cfg = tiny_config()
    model = build_model(cfg, seed=seed)
    if dtype:
        cast_model(model, dtype)
    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=3)
    loader = ShardedLoader(corpus, batch_size=8, seq_len=16)
    opt = Adam(model.parameters(), lr=lr)
    trainer = Trainer(model, opt, schedule=ConstantLR(lr), scaler=scaler, grad_clip=1.0)
    return cfg, model, loader, opt, trainer


class TestTrainer:
    def test_loss_decreases_fp32(self):
        _, _, loader, _, trainer = make_setup()
        hist = trainer.fit(loader, 40)
        assert hist[-1].loss < hist[0].loss * 0.8

    def test_loss_decreases_fp16(self):
        scaler = DynamicLossScaler(init_scale=2.0**10, growth_interval=20)
        _, _, loader, _, trainer = make_setup(dtype="fp16", scaler=scaler)
        hist = trainer.fit(loader, 40)
        assert hist[-1].loss < hist[0].loss * 0.85

    def test_fp16_tracks_fp32_closely(self):
        """F6 shape: mixed-precision loss curve overlaps fp32."""
        _, _, loader32, _, tr32 = make_setup()
        scaler = DynamicLossScaler(init_scale=2.0**10)
        _, _, loader16, _, tr16 = make_setup(dtype="fp16", scaler=scaler)
        h32 = tr32.fit(loader32, 30)
        h16 = tr16.fit(loader16, 30)
        diffs = [abs(a.loss - b.loss) for a, b in zip(h32, h16)]
        assert max(diffs) < 0.15

    def test_step_metrics_populated(self):
        _, _, loader, _, trainer = make_setup()
        res = trainer.train_step(loader.get_batch(0))
        assert res.step == 0
        assert np.isfinite(res.loss)
        assert res.lr == pytest.approx(3e-3)
        assert np.isfinite(res.grad_norm)
        assert not res.skipped

    def test_schedule_applied(self):
        cfg = tiny_config()
        model = build_model(cfg)
        loader = ShardedLoader(SyntheticCorpus(vocab_size=cfg.vocab_size), 2, 8)
        opt = Adam(model.parameters(), lr=1.0)
        trainer = Trainer(model, opt, schedule=WarmupCosineLR(0.1, 5, 20))
        res = trainer.train_step(loader.get_batch(0))
        assert res.lr == pytest.approx(0.1 / 5)

    def test_overflow_skips_step(self):
        """A huge loss scale forces overflow; the step must be skipped."""
        scaler = DynamicLossScaler(init_scale=2.0**24, min_scale=1.0)
        cfg, model, loader, opt, trainer = make_setup(dtype="fp16", scaler=scaler)
        before = model.tok_emb.weight.data.copy()
        res = trainer.train_step(loader.get_batch(0))
        if res.skipped:  # scale 2^24 on fp16 grads overflows
            assert np.array_equal(model.tok_emb.weight.data, before)
            assert scaler.scale < 2.0**24
        else:  # extremely unlikely, but then training proceeded normally
            assert np.isfinite(res.grad_norm)

    def test_history_accumulates(self):
        _, _, loader, _, trainer = make_setup()
        trainer.fit(loader, 3)
        assert len(trainer.history) == 3
        assert [r.step for r in trainer.history] == [0, 1, 2]

    def test_on_step_callback(self):
        _, _, loader, _, trainer = make_setup()
        seen = []
        trainer.fit(loader, 2, on_step=lambda r: seen.append(r.step))
        assert seen == [0, 1]

    def test_invalid_steps(self):
        _, _, loader, _, trainer = make_setup()
        with pytest.raises(ConfigError):
            trainer.fit(loader, 0)


class TestCheckpoint:
    def test_roundtrip_model_optimizer_scaler(self, tmp_path):
        _, model, loader, opt, trainer = make_setup(seed=4)
        scaler = DynamicLossScaler(init_scale=512.0)
        trainer.fit(loader, 5)
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt, scaler, step=5,
                               extra={"note": "test"})

        model2 = build_model(tiny_config(), seed=99)
        opt2 = Adam(model2.parameters(), lr=3e-3)
        scaler2 = DynamicLossScaler()
        meta = load_checkpoint(path, model2, opt2, scaler2)

        assert meta["step"] == 5
        assert meta["extra"]["note"] == "test"
        for (_, a), (_, b) in zip(model.named_parameters(), model2.named_parameters()):
            assert np.array_equal(a.data, b.data)
        assert opt2.step_count == opt.step_count
        assert scaler2.scale == 512.0

    def test_training_resumes_identically(self, tmp_path):
        """Train 5+5 with a checkpoint in the middle == train 10 straight."""
        _, model_a, loader, opt_a, trainer_a = make_setup(seed=7)
        trainer_a.fit(loader, 10)

        _, model_b, loader_b, opt_b, trainer_b = make_setup(seed=7)
        trainer_b.fit(loader_b, 5)
        p = save_checkpoint(tmp_path / "mid.npz", model_b, opt_b, step=5)

        _, model_c, loader_c, opt_c, trainer_c = make_setup(seed=123)
        meta = load_checkpoint(p, model_c, opt_c)
        trainer_c.step_count = meta["step"]
        trainer_c.fit(loader_c, 5)

        for (_, a), (_, c) in zip(model_a.named_parameters(), model_c.named_parameters()):
            assert np.allclose(a.data, c.data, atol=1e-6)

    def test_missing_file(self, tmp_path):
        model = build_model(tiny_config())
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz", model)

    def test_corrupt_file(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(bad, build_model(tiny_config()))

    def test_wrong_model_shape(self, tmp_path):
        model = build_model(tiny_config())
        path = save_checkpoint(tmp_path / "a.npz", model)
        other = build_model(tiny_config(d_model=64, n_heads=4))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, other)

    def test_model_only_checkpoint(self, tmp_path):
        model = build_model(tiny_config(), seed=3)
        path = save_checkpoint(tmp_path / "m.npz", model)
        model2 = build_model(tiny_config(), seed=8)
        load_checkpoint(path, model2)
        assert np.array_equal(model.tok_emb.weight.data, model2.tok_emb.weight.data)
