"""The auto-parallelism planner: enumeration, ranking, verification, reports.

The planner's core promise is *zero drift* between its three halves: every
layout it emits launches through the measured runner, every layout it
rejects fails the launch path with the identical error message, and the
analytic ranking stays within a bounded error of measured step times after
calibration.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, TopologyError
from repro.hardware import laptop_machine, sunway_machine
from repro.layout import ParallelLayout, validate_layout_for_model
from repro.models import tiny_config
from repro.network import CLUSTER_PRESETS, cluster_preset, sunway_network
from repro.parallel import run_distributed_training
from repro.perf import ParallelPlan, StepModel, calibrate_efficiency
from repro.plan import (
    PlannerConfig,
    build_plan_report,
    enumerate_layouts,
    plan_layouts,
    plan_records,
    search_plans,
    verify_plans,
)

#: Small world with every axis representable: 4 layers -> pp in {1, 2, 4},
#: alternating dense/MoE blocks -> TP has something to shard.
TINY4 = tiny_config(n_layers=4, moe_every=2, num_experts=4)


def _planner(world=4, model=TINY4, **kw):
    return PlannerConfig(model=model, num_nodes=world, cluster="toy", **kw)


class TestEnumeration:
    def test_every_layout_constructs(self):
        for world in (1, 2, 4, 6, 8, 12):
            for layout in enumerate_layouts(world):
                assert isinstance(layout, ParallelLayout)
                assert layout.world_size == world

    def test_axes_cover_divisors(self):
        layouts = enumerate_layouts(8)
        assert {l.pp_size for l in layouts} == {1, 2, 4, 8}
        assert {l.ep_size for l in layouts if l.pp_size == 1 and l.tp_size == 1} == {
            1, 2, 4, 8,
        }
        # ZeRO shard counts appear only on otherwise-pure-DP layouts.
        assert all(
            l.tp_size == 1 and l.pp_size == 1
            for l in layouts if l.zero_shards > 1
        )

    def test_no_duplicates_and_deterministic_order(self):
        a = enumerate_layouts(12)
        b = enumerate_layouts(12)
        assert a == b
        assert len(a) == len(set(a))

    def test_max_bounds_respected(self):
        layouts = enumerate_layouts(16, max_tp=2, max_zero=4)
        assert max(l.tp_size for l in layouts) <= 2
        assert max(l.zero_shards for l in layouts) <= 4

    def test_bad_world_rejected(self):
        with pytest.raises(ConfigError):
            enumerate_layouts(0)


class TestSearchLaunchParity:
    """Search filters through the runner's exact validation path."""

    @pytest.fixture(scope="class")
    def result(self):
        return search_plans(_planner())

    def test_search_finds_candidates(self, result):
        assert len(result.candidates) >= 5
        strategies = {c.strategy for c in result.candidates}
        # One search at world=4 exercises several registry entries.
        assert {"dp", "moda", "tp"} <= strategies

    def test_every_emitted_layout_trains(self, result):
        """The planner's core guarantee: emitted == launchable."""
        preset = result.config.preset
        world = result.config.num_nodes
        for cand in result.candidates:
            run_cfg = result.config.training_config(cand.layout, num_steps=1)
            run = run_distributed_training(
                run_cfg,
                network=preset.network(world),
                machine=preset.machine(world),
            )
            assert np.isfinite(run.losses).all(), cand.layout.describe()
            assert run.step_time > 0

    def test_every_rejection_matches_launch_error(self, result):
        """Rejected layouts fail the launch path with the same message."""
        assert result.rejected, "expected some rejections at world=4"
        for rej in result.rejected:
            if "GiB" in rej.reason:
                continue  # memory-feasibility is a planner-only gate
            with pytest.raises(ConfigError) as err:
                run_cfg = result.config.training_config(rej.layout)
                run_cfg.resolve_strategy().validate(run_cfg)
            assert str(err.value) == rej.reason

    def test_ranking_is_deterministic(self, result):
        again = search_plans(_planner())
        assert [
            (c.layout, c.strategy, c.predicted_step_time)
            for c in again.candidates
        ] == [
            (c.layout, c.strategy, c.predicted_step_time)
            for c in result.candidates
        ]
        assert again.rejected == result.rejected

    def test_ranking_sorted_by_predicted_time(self, result):
        times = [c.predicted_step_time for c in result.candidates]
        assert times == sorted(times)

    def test_memory_gate_rejects_oversized_models(self):
        # Brain-scale config on 2 laptop nodes: nothing fits.
        from repro.models import bagualu_14_5t

        result = search_plans(
            PlannerConfig(model=bagualu_14_5t(), num_nodes=2, cluster="toy",
                          seq_len=2048)
        )
        assert not result.candidates
        assert any("GiB" in r.reason for r in result.rejected)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ConfigError, match="unknown cluster preset"):
            PlannerConfig(model=TINY4, num_nodes=4, cluster="nope")


class TestVerification:
    @pytest.fixture(scope="class")
    def verified(self):
        model = tiny_config(num_experts=8)
        return plan_layouts(model, num_nodes=8, cluster="toy",
                            top_k=2, verify_steps=2)

    def test_topk_measured(self, verified):
        assert len(verified.verified) == 2
        for v in verified.verified:
            assert v.measured_step_time > 0
            assert v.predicted_step_time == v.candidate.predicted_step_time

    def test_median_error_within_bound(self, verified):
        """The planner's accuracy contract (ISSUE acceptance: <= 25%)."""
        assert verified.median_relative_error is not None
        assert verified.median_relative_error <= 0.25

    def test_calibration_feeds_back_into_ranking(self, verified):
        assert verified.calibration is not None
        assert 0.01 <= verified.calibration.efficiency <= 1.0
        # The anchor (top-ranked) candidate is reproduced ~exactly.
        anchor = verified.verified[0]
        assert anchor.calibrated_relative_error == pytest.approx(0.0, abs=1e-9)
        # The full ranking is re-priced with the fitted machine.
        assert len(verified.recalibrated) == len(verified.candidates)
        repriced = {c.layout: c.predicted_step_time for c in verified.recalibrated}
        assert repriced.keys() == {
            c.layout for c in verified.candidates
        }

    def test_best_prefers_measured_winner(self, verified):
        fastest = min(verified.verified, key=lambda v: v.measured_step_time)
        assert verified.best is fastest.candidate

    def test_no_verify_skips_measured_runs(self):
        result = plan_layouts(TINY4, num_nodes=4, cluster="toy", verify=False)
        assert result.verified == ()
        assert result.calibration is None
        assert result.median_relative_error is None


class TestValidationDriftGuards:
    """One shared implementation -> identical messages everywhere."""

    def test_tp_message_identical_across_spines(self):
        model = tiny_config(n_layers=4, moe_every=2)  # d_ff=64
        layout = ParallelLayout(world_size=6, tp_size=3, ep_size=1)
        with pytest.raises(ConfigError) as direct:
            validate_layout_for_model(layout, model)
        with pytest.raises(ConfigError) as analytic:
            ParallelPlan(num_nodes=6, ep_size=1, tp_size=3,
                         seq_len=16).validate_against(model)
        assert str(direct.value) == str(analytic.value)
        assert "tp_size=3 must divide d_ff=64" in str(direct.value)

    def test_pp_message_identical_across_spines(self):
        model = tiny_config()  # 2 layers
        layout = ParallelLayout(world_size=8, pp_size=4)
        with pytest.raises(ConfigError) as direct:
            validate_layout_for_model(layout, model)
        with pytest.raises(ConfigError) as analytic:
            ParallelPlan(num_nodes=8, ep_size=1, pp_size=4,
                         seq_len=16).validate_against(model)
        assert str(direct.value) == str(analytic.value)
        assert "cannot split 2 layers into 4 pipeline stages" in str(direct.value)

    def test_expert_granularity_modes(self):
        model = tiny_config(num_experts=4)
        layout = ParallelLayout(world_size=8, ep_size=8)
        # Runner-side: a rank holds a slice of every layer's experts.
        with pytest.raises(ConfigError, match="must divide num_experts"):
            validate_layout_for_model(layout, model, expert_granularity="layer")
        # Analytic side: instances span layers (2 layers x 4 experts = 8).
        validate_layout_for_model(layout, model, expert_granularity="instance")
        with pytest.raises(ConfigError, match="expert_granularity"):
            validate_layout_for_model(layout, model, expert_granularity="bogus")


class TestClusterPresets:
    def test_known_presets(self):
        assert {"sunway", "flat", "toy"} <= set(CLUSTER_PRESETS)
        for name, preset in CLUSTER_PRESETS.items():
            assert preset.name == name
            net = preset.network(4)
            machine = preset.machine(4)
            assert machine.num_nodes == 4
            assert net.allreduce_time(1024, [0, 1, 2, 3]) > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(TopologyError, match="unknown cluster preset"):
            cluster_preset("hyperscale")

    def test_sweeps_use_shared_preset(self):
        """The sweep default equals the preset table's sunway builder."""
        from repro.perf.sweep import weak_scaling_rows

        cfg = tiny_config()
        machine = sunway_machine(8)
        default = weak_scaling_rows(cfg, machine, [4, 8], ep_size=2)
        explicit = weak_scaling_rows(
            cfg, machine, [4, 8], ep_size=2,
            network_builder=cluster_preset("sunway").network,
        )
        assert default == explicit


class TestStepModelNewTerms:
    MODEL = tiny_config(n_layers=4, moe_every=2, num_experts=4)
    MACHINE = laptop_machine(8)
    NET = sunway_network(8, supernode_size=4)

    def _bd(self, **plan_kw):
        plan = ParallelPlan(num_nodes=8, micro_batch=4, seq_len=16, **plan_kw)
        return StepModel(self.MODEL, self.MACHINE, self.NET).step_breakdown(plan)

    def test_pipeline_terms(self):
        bd = self._bd(ep_size=1, pp_size=2, num_microbatches=2)
        assert bd.pipeline_p2p > 0
        assert bd.pipeline_bubble > 0
        # GPipe bubble: (pp-1)/m of the per-stage compute.
        assert bd.pipeline_bubble == pytest.approx(bd.compute / 2)
        flat = self._bd(ep_size=1)
        assert flat.pipeline_p2p == 0 and flat.pipeline_bubble == 0

    def test_more_microbatches_shrink_bubble(self):
        few = self._bd(ep_size=1, pp_size=2, num_microbatches=2)
        many = self._bd(ep_size=1, pp_size=2, num_microbatches=4)
        assert many.pipeline_bubble < few.pipeline_bubble

    def test_zero_term(self):
        bd = self._bd(ep_size=1, zero_shards=4)
        assert bd.zero_allgather > 0
        assert self._bd(ep_size=1).zero_allgather == 0

    def test_tp_terms(self):
        bd = self._bd(ep_size=1, tp_size=2)
        assert bd.tp_allreduce > 0
        # TP shards the dense-FFN matmuls -> less dense compute per rank.
        assert bd.dense_compute < self._bd(ep_size=1).dense_compute

    def test_comm_by_op_taxonomy(self):
        bd = self._bd(ep_size=2, pp_size=2, num_microbatches=2)
        ops = bd.comm_by_op()
        assert set(ops) == {"alltoall", "allreduce", "allgather", "p2p"}
        assert sum(ops.values()) == pytest.approx(bd.communication)

    def test_total_includes_bubble(self):
        bd = self._bd(ep_size=1, pp_size=2, num_microbatches=2)
        assert bd.total == pytest.approx(
            bd.compute + bd.communication + bd.pipeline_bubble
        )

    def test_calibration_recovers_truth_with_pipeline(self):
        """The bubble sits on the fitted side: closed-form stays exact."""
        plan = ParallelPlan(num_nodes=8, ep_size=1, pp_size=2,
                            num_microbatches=2, micro_batch=4, seq_len=16)
        from dataclasses import replace

        truth = 0.37
        m = laptop_machine(8)
        m_true = replace(m, compute_efficiency=truth)
        measured = StepModel(self.MODEL, m_true, self.NET).step_time(plan)
        fit = calibrate_efficiency(self.MODEL, m, self.NET, plan, measured)
        assert fit.efficiency == pytest.approx(truth, rel=1e-6)


class TestPlanReport:
    @pytest.fixture(scope="class")
    def result(self):
        return plan_layouts(tiny_config(num_experts=8), num_nodes=8,
                            cluster="toy", top_k=2, verify_steps=2)

    def test_report_is_byte_stable(self, result):
        again = plan_layouts(tiny_config(num_experts=8), num_nodes=8,
                             cluster="toy", top_k=2, verify_steps=2)
        assert build_plan_report(result) == build_plan_report(again)

    def test_report_sections(self, result):
        report = build_plan_report(result, title="T")
        for heading in ("# T", "## Planner", "## Ranked candidates",
                        "## Verified candidates", "## Calibration",
                        "## Rejected layouts"):
            assert heading in report

    def test_records_are_typed(self, result):
        records = plan_records(result)
        kinds = {r["record"] for r in records}
        assert kinds == {"plan_summary", "plan_candidate", "plan_verified",
                         "plan_calibration", "plan_rejected"}
        summary = records[0]
        assert summary["num_candidates"] == len(result.candidates)
        cand = next(r for r in records if r["record"] == "plan_candidate")
        assert {"dp", "tp", "pp", "ep", "zero", "strategy",
                "predicted_step_time"} <= set(cand)

    def test_cli_plan_smoke(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "plan.md"
        metrics = tmp_path / "plan.jsonl"
        code = main(["plan", "--nodes", "4", "--top-k", "1", "--steps", "1",
                     "--out", str(out), "--metrics", str(metrics)])
        assert code == 0
        assert "## Planner" in out.read_text()
        assert metrics.read_text().startswith('{"cluster"')
