"""Edge cases of the tensor engine: empty tensors, odd shapes, dtypes."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, softmax, gather_rows, scatter_rows
from repro.tensor import ops as T


class TestEmptyTensors:
    def test_empty_matmul(self):
        a = Tensor(np.zeros((0, 4)), dtype="fp64")
        b = Tensor(np.zeros((4, 3)), dtype="fp64")
        out = a @ b
        assert out.shape == (0, 3)

    def test_empty_matmul_backward(self):
        a = Tensor(np.zeros((0, 4)), requires_grad=True, dtype="fp64")
        b = Tensor(np.ones((4, 3)), requires_grad=True, dtype="fp64")
        (a @ b).sum().backward()
        assert a.grad.shape == (0, 4)
        assert np.allclose(b.grad, 0.0)

    def test_empty_gather(self):
        x = Tensor(np.ones((5, 2)), dtype="fp64")
        out = gather_rows(x, np.zeros(0, dtype=np.int64))
        assert out.shape == (0, 2)

    def test_empty_scatter(self):
        src = Tensor(np.zeros((0, 2)), dtype="fp64")
        out = scatter_rows(src, np.zeros(0, dtype=np.int64), 4)
        assert out.shape == (4, 2)
        assert np.allclose(out.data, 0.0)

    def test_empty_concat_segment(self):
        a = Tensor(np.zeros((0, 3)), dtype="fp64")
        b = Tensor(np.ones((2, 3)), dtype="fp64")
        out = T.concat([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_empty_softmax(self):
        out = softmax(Tensor(np.zeros((0, 5)), dtype="fp64"))
        assert out.shape == (0, 5)

    def test_empty_sum(self):
        x = Tensor(np.zeros((0, 3)), requires_grad=True, dtype="fp64")
        s = x.sum()
        assert s.item() == 0.0
        s.backward()
        assert x.grad.shape == (0, 3)


class TestScalars:
    def test_zero_dim_tensor_arithmetic(self):
        a = Tensor(np.float64(3.0), dtype="fp64")
        b = Tensor(np.float64(4.0), dtype="fp64")
        assert (a * b).item() == 12.0

    def test_scalar_broadcast_grad(self):
        s = Tensor(np.float64(2.0), requires_grad=True, dtype="fp64")
        x = Tensor(np.ones((3, 3)), dtype="fp64")
        (x * s).sum().backward()
        assert s.grad == pytest.approx(9.0)

    def test_python_scalar_operands(self):
        x = Tensor([1.0, 2.0], requires_grad=True, dtype="fp64")
        out = 2.0 * x + 1.0 - 0.5 / (x + 1.0)
        out.sum().backward()
        assert x.grad is not None


class TestBroadcastingCorners:
    def test_leading_ones(self):
        a = Tensor(np.ones((1, 1, 3)), requires_grad=True, dtype="fp64")
        b = Tensor(np.ones((2, 4, 3)), dtype="fp64")
        (a + b).sum().backward()
        assert a.grad.shape == (1, 1, 3)
        assert np.allclose(a.grad, 8.0)

    def test_mutual_broadcast(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True, dtype="fp64")
        b = Tensor(np.ones((1, 4)), requires_grad=True, dtype="fp64")
        (a * b).sum().backward()
        assert np.allclose(a.grad, 4.0)
        assert np.allclose(b.grad, 3.0)

    def test_where_broadcast(self):
        cond = np.array([[True], [False]])
        a = Tensor(np.ones((2, 3)), requires_grad=True, dtype="fp64")
        b = Tensor(np.zeros((2, 3)), dtype="fp64")
        out = T.where(cond, a, b)
        assert np.allclose(out.data[0], 1.0)
        assert np.allclose(out.data[1], 0.0)


class TestDtypeMixing:
    def test_fp16_plus_fp64_promotes(self):
        a = Tensor([1.0], dtype="fp16")
        b = Tensor([1.0], dtype="fp64")
        out = a + b
        assert out.dtype.name == "fp64"
        assert out.data.dtype == np.float64

    def test_grad_quantized_to_leaf_dtype(self):
        a = Tensor([1.0], requires_grad=True, dtype="fp16")
        b = Tensor([1.0 + 2**-20], dtype="fp64")
        (a * b).backward()
        # The fp64 product's gradient lands on the fp16 grid.
        assert a.grad[0] in (1.0, np.float32(1.0 + 2**-11))

    def test_fp16_grad_overflow_representable(self):
        a = Tensor([1.0], requires_grad=True, dtype="fp16")
        (a * 1e6).backward()  # grad 1e6 overflows fp16
        assert np.isinf(a.grad[0])

    def test_bf16_grad_does_not_overflow(self):
        a = Tensor([1.0], requires_grad=True, dtype="bf16")
        (a * 1e6).backward()
        assert np.isfinite(a.grad[0])


class TestErrorPaths:
    def test_unbroadcastable_grad(self):
        from repro.tensor import unbroadcast

        with pytest.raises(ShapeError):
            unbroadcast(np.ones((2, 3)), (5,))

    def test_where_without_tensors(self):
        with pytest.raises(ShapeError):
            T.where(np.array([True]), 1.0, 2.0)

    def test_reshape_size_mismatch(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 3))).reshape(7)

    def test_negative_advance_clock_like_guards(self):
        # ops on mismatched shapes raise NumPy errors, not silent wrongness
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.zeros((4, 5)))
        with pytest.raises(ValueError):
            _ = a + b
