"""Gating strategies: correctness and balance properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.moe import BalancedGate, NoisyTopKGate, RandomGate, TopKGate, load_stats, make_gate
from repro.tensor import Tensor

RNG = np.random.default_rng(11)


def logits(n, e, skew=0.0, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, e))
    base[:, 0] += skew  # bias toward expert 0
    return Tensor(base, dtype="fp64")


class TestTopKGate:
    def test_top1_picks_argmax(self):
        gate = TopKGate(num_experts=4, top_k=1)
        x = logits(32, 4, seed=1)
        out = gate(x, RNG)
        assert np.array_equal(out.indices[:, 0], np.argmax(x.data, axis=1))

    def test_top2_ordered_by_prob(self):
        gate = TopKGate(num_experts=6, top_k=2)
        x = logits(16, 6, seed=2)
        out = gate(x, RNG)
        first = x.data[np.arange(16), out.indices[:, 0]]
        second = x.data[np.arange(16), out.indices[:, 1]]
        assert np.all(first >= second)

    def test_top2_slots_distinct(self):
        gate = TopKGate(num_experts=4, top_k=2)
        out = gate(logits(64, 4, seed=3), RNG)
        assert np.all(out.indices[:, 0] != out.indices[:, 1])

    def test_combine_weights_normalized(self):
        gate = TopKGate(num_experts=8, top_k=2)
        out = gate(logits(20, 8, seed=4), RNG)
        assert np.allclose(out.combine_weights.data.sum(axis=1), 1.0, atol=1e-6)

    def test_combine_weights_differentiable(self):
        gate = TopKGate(num_experts=4, top_k=1)
        x = logits(5, 4, seed=5)
        x.requires_grad = True
        out = gate(x, RNG)
        out.combine_weights.sum().backward()
        assert x.grad is not None

    def test_load_counts_sum(self):
        gate = TopKGate(num_experts=4, top_k=2)
        out = gate(logits(30, 4, seed=6), RNG)
        assert out.load.sum() == 30 * 2

    def test_skewed_logits_give_skewed_load(self):
        gate = TopKGate(num_experts=8, top_k=1)
        out = gate(logits(256, 8, skew=3.0, seed=7), RNG)
        stats = load_stats(out.load)
        assert stats.imbalance > 2.0  # expert 0 hogs tokens

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            TopKGate(num_experts=0)
        with pytest.raises(ConfigError):
            TopKGate(num_experts=4, top_k=5)

    def test_wrong_logit_shape(self):
        gate = TopKGate(num_experts=4)
        with pytest.raises(ConfigError):
            gate(logits(8, 5), RNG)


class TestBalancedGate:
    def test_respects_capacity(self):
        gate = BalancedGate(num_experts=8, top_k=1, capacity_factor=1.0)
        out = gate(logits(256, 8, skew=5.0, seed=8), RNG)
        stats = load_stats(out.load)
        assert stats.max <= np.ceil(256 / 8)
        assert stats.imbalance <= 1.01

    def test_no_tokens_dropped(self):
        gate = BalancedGate(num_experts=4, top_k=2, capacity_factor=1.0)
        out = gate(logits(64, 4, skew=10.0, seed=9), RNG)
        assert out.load.sum() == 64 * 2

    def test_beats_topk_on_skewed_stream(self):
        """The F5 headline: balanced gating flattens Zipf-induced skew."""
        x = logits(512, 16, skew=4.0, seed=10)
        topk = TopKGate(16, 1)(x, RNG)
        bal = BalancedGate(16, 1)(x, RNG)
        assert load_stats(bal.load).imbalance < load_stats(topk.load).imbalance

    def test_unconstrained_matches_preference(self):
        """With generous capacity, balanced behaves like top-1."""
        x = logits(8, 4, seed=11)
        bal = BalancedGate(4, 1, capacity_factor=8.0)(x, RNG)
        top = TopKGate(4, 1)(x, RNG)
        assert np.array_equal(bal.indices, top.indices)

    def test_slots_distinct_topk2(self):
        gate = BalancedGate(num_experts=4, top_k=2, capacity_factor=2.0)
        out = gate(logits(32, 4, seed=12), RNG)
        assert np.all(out.indices[:, 0] != out.indices[:, 1])

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            BalancedGate(4, 1, capacity_factor=0.0)

    @given(st.integers(min_value=8, max_value=64), st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_capacity_bound_property(self, n, e):
        gate = BalancedGate(num_experts=e, top_k=1, capacity_factor=1.0)
        out = gate(logits(n, e, skew=3.0, seed=n * e), RNG)
        cap = int(np.ceil(n / e))
        assert out.load.max() <= cap
        assert out.load.sum() == n


class TestRandomGate:
    def test_balanced_in_expectation(self):
        gate = RandomGate(num_experts=4, top_k=1)
        out = gate(logits(4000, 4, skew=10.0, seed=13), np.random.default_rng(0))
        stats = load_stats(out.load)
        assert stats.imbalance < 1.15  # ignores the skewed content

    def test_topk2_distinct(self):
        gate = RandomGate(num_experts=4, top_k=2)
        out = gate(logits(50, 4, seed=14), np.random.default_rng(0))
        assert np.all(out.indices[:, 0] != out.indices[:, 1])

    def test_deterministic_given_rng(self):
        gate = RandomGate(num_experts=4, top_k=1)
        x = logits(20, 4, seed=15)
        a = gate(x, np.random.default_rng(5)).indices
        b = gate(x, np.random.default_rng(5)).indices
        assert np.array_equal(a, b)


class TestNoisyTopKGate:
    def test_reduces_to_topk_with_zero_noise(self):
        x = logits(32, 8, seed=16)
        noisy = NoisyTopKGate(8, 1, noise_std=0.0)(x, np.random.default_rng(0))
        plain = TopKGate(8, 1)(x, np.random.default_rng(0))
        assert np.array_equal(noisy.indices, plain.indices)

    def test_noise_changes_some_assignments(self):
        x = logits(256, 8, seed=17)
        noisy = NoisyTopKGate(8, 1, noise_std=3.0)(x, np.random.default_rng(1))
        plain = TopKGate(8, 1)(x, np.random.default_rng(1))
        assert not np.array_equal(noisy.indices, plain.indices)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            NoisyTopKGate(4, 1, noise_std=-1.0)


class TestFactory:
    @pytest.mark.parametrize("name", ["topk", "noisy-topk", "balanced", "random"])
    def test_make_gate(self, name):
        gate = make_gate(name, num_experts=4, top_k=1)
        out = gate(logits(16, 4, seed=18), np.random.default_rng(0))
        assert out.indices.shape == (16, 1)

    def test_unknown_gate(self):
        with pytest.raises(ConfigError):
            make_gate("oracle", 4)
