"""Expert parallelism: differentiable alltoall and distributed-MoE
equivalence with the single-process reference layer."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.models import MoELayer
from repro.parallel import DistributedMoELayer, allreduce_sum, alltoall_rows
from repro.simmpi import run_spmd
from repro.tensor import Tensor


class TestAlltoallRows:
    def test_forward_routing(self):
        def program(comm):
            # Rank r sends one row [r*10 + d] to each destination d.
            x = Tensor(np.array([[comm.rank * 10 + d] for d in range(comm.size)], dtype=np.float64), dtype="fp64")
            out, counts = alltoall_rows(x, [1] * comm.size, comm)
            return out.data.ravel().tolist(), counts

        res = run_spmd(program, 3)
        for r, (rows, counts) in enumerate(res.returns):
            assert rows == [s * 10 + r for s in range(3)]
            assert counts == [1, 1, 1]

    def test_variable_counts(self):
        def program(comm):
            # Rank 0 sends 2 rows to rank 1, nothing elsewhere.
            if comm.rank == 0:
                x = Tensor(np.ones((2, 3)), dtype="fp64")
                counts = [0, 2]
            else:
                x = Tensor(np.zeros((0, 3)), dtype="fp64")
                counts = [0, 0]
            out, recv = alltoall_rows(x, counts, comm)
            return out.shape, recv

        res = run_spmd(program, 2)
        assert res.returns[0] == ((0, 3), [0, 0])
        assert res.returns[1] == ((2, 3), [2, 0])

    def test_backward_routes_gradients_home(self):
        def program(comm):
            x = Tensor(
                np.full((comm.size, 2), float(comm.rank)),
                requires_grad=True,
                dtype="fp64",
            )
            out, _ = alltoall_rows(x, [1] * comm.size, comm)
            # Loss weights received rows by (source+1).
            w = np.arange(1, comm.size + 1, dtype=np.float64)[:, None]
            (out * Tensor(w, dtype="fp64")).sum().backward()
            return x.grad.copy()

        res = run_spmd(program, 3)
        # Row d of rank r went to rank d and was weighted by (r+1) there...
        # wait: receiver weights by source index s+1, so the gradient coming
        # back to rank r's row d is (r+1).
        for r, grad in enumerate(res.returns):
            assert np.allclose(grad, r + 1)

    def test_count_mismatch_rejected(self):
        def program(comm):
            x = Tensor(np.zeros((2, 2)))
            alltoall_rows(x, [1] * comm.size, comm)  # sums to size != 2 rows

        with pytest.raises(CommunicatorError):
            run_spmd(program, 3)

    def test_roundtrip_restores_rows(self):
        def program(comm):
            x = Tensor(np.arange(comm.size * 2, dtype=np.float64).reshape(comm.size, 2) + 100 * comm.rank, dtype="fp64")
            there, counts = alltoall_rows(x, [1] * comm.size, comm)
            back, _ = alltoall_rows(there, counts, comm)
            return np.allclose(back.data, x.data)

        assert all(run_spmd(program, 4).returns)


class TestAllreduceSumOp:
    def test_forward(self):
        def program(comm):
            x = Tensor(np.full(3, comm.rank + 1.0), dtype="fp64")
            return allreduce_sum(x, comm).data.copy()

        res = run_spmd(program, 3)
        assert np.allclose(res.returns[0], 6.0)

    def test_backward_is_identity_per_rank(self):
        """SPMD convention: the loss is one logical value, so the adjoint
        of the cross-rank sum is a passthrough of the local gradient."""

        def program(comm):
            x = Tensor(np.ones(2), requires_grad=True, dtype="fp64")
            out = allreduce_sum(x, comm)
            (out * 2.0).sum().backward()
            return x.grad.copy()

        res = run_spmd(program, 3)
        for grad in res.returns:
            assert np.allclose(grad, 2.0)


def _reference_and_weights(num_experts=4, d_model=8, d_ff=16, seed=3):
    """Build a local reference MoE layer and return (layer, state)."""
    ref = MoELayer(
        d_model, d_ff, num_experts, np.random.default_rng(seed), gate="topk", top_k=1,
        aux_weight=1e-2,
    )
    return ref, ref.state_dict()


class TestDistributedEquivalence:
    """The core correctness claim: sharding experts changes WHERE compute
    runs, not WHAT is computed."""

    @pytest.mark.parametrize("ep_size", [1, 2, 4])
    def test_forward_matches_local_reference(self, ep_size):
        num_experts, d_model, d_ff = 4, 8, 16
        ref, state = _reference_and_weights(num_experts, d_model, d_ff)
        rng = np.random.default_rng(0)
        # One global batch, split evenly across EP ranks.
        n_per_rank = 6
        full_x = rng.normal(size=(n_per_rank * ep_size, d_model)).astype(np.float32)
        ref_out = ref(Tensor(full_x)).data

        def program(comm):
            layer = DistributedMoELayer(
                d_model, d_ff, num_experts, comm,
                shared_rng=np.random.default_rng(1), seed=0,
                gate="topk", top_k=1, aux_weight=1e-2,
            )
            # Load the reference weights into the local shard.
            layer.router.weight.data = state["router.weight"].copy()
            for li, gid in enumerate(layer.global_expert_ids):
                for pname in ("fc_in.weight", "fc_in.bias", "fc_out.weight", "fc_out.bias"):
                    src = state[f"experts.{gid}.{pname}"]
                    dst = dict(layer.experts[li].named_parameters())[pname]
                    dst.data = src.copy()
            lo = comm.rank * n_per_rank
            x = Tensor(full_x[lo: lo + n_per_rank].copy())
            return layer(x).data

        res = run_spmd(program, ep_size)
        got = np.concatenate(res.returns, axis=0)
        assert np.allclose(got, ref_out, atol=1e-5)

    def test_gradients_flow_through_exchange(self):
        def program(comm):
            layer = DistributedMoELayer(
                8, 16, 4, comm, shared_rng=np.random.default_rng(1), seed=0,
                gate="topk", top_k=1,
            )
            x = Tensor(np.random.default_rng(comm.rank).normal(size=(6, 8)), requires_grad=True)
            out = layer(x)
            (out.sum() + layer.last_aux_loss).backward()
            grads_ok = x.grad is not None and layer.router.weight.grad is not None
            expert_touched = any(
                p.grad is not None for e in layer.experts for p in e.parameters()
            )
            return grads_ok, expert_touched

        res = run_spmd(program, 2)
        assert all(ok for ok, _ in res.returns)
        assert any(touched for _, touched in res.returns)

    def test_global_load_allreduced(self):
        def program(comm):
            layer = DistributedMoELayer(
                8, 16, 4, comm, shared_rng=np.random.default_rng(1), seed=0,
            )
            x = Tensor(np.random.default_rng(comm.rank).normal(size=(5, 8)))
            layer(x)
            return layer.last_load.sum(), layer.last_global_load.sum()

        res = run_spmd(program, 4)
        for local, global_ in res.returns:
            assert local == 5
            assert global_ == 20

    def test_compute_hook_called_with_rows(self):
        def program(comm):
            seen = []
            layer = DistributedMoELayer(
                8, 16, 4, comm, shared_rng=np.random.default_rng(1), seed=0,
                compute_hook=seen.append,
            )
            layer(Tensor(np.random.default_rng(0).normal(size=(6, 8))))
            return seen, layer.last_local_rows

        res = run_spmd(program, 2)
        total_rows = sum(r[1] for r in res.returns)
        assert total_rows == 12  # every slot processed exactly once
        for seen, rows in res.returns:
            assert seen == [rows]

    def test_replicated_router_identical_across_ranks(self):
        def program(comm):
            layer = DistributedMoELayer(
                8, 16, 4, comm, shared_rng=np.random.default_rng(1), seed=0,
            )
            return layer.router.weight.data.copy()

        res = run_spmd(program, 4)
        for w in res.returns[1:]:
            assert np.array_equal(w, res.returns[0])

    def test_expert_weights_independent_of_layout(self):
        """Expert gid's weights are the same whether sharded over 2 or 4."""

        def program(comm):
            layer = DistributedMoELayer(
                8, 16, 4, comm, shared_rng=np.random.default_rng(1), seed=0,
            )
            return {gid: layer.experts[i].fc_in.weight.data.copy()
                    for i, gid in enumerate(layer.global_expert_ids)}

        res2 = run_spmd(program, 2)
        res4 = run_spmd(program, 4)
        all2 = {k: v for d in res2.returns for k, v in d.items()}
        all4 = {k: v for d in res4.returns for k, v in d.items()}
        for gid in range(4):
            assert np.array_equal(all2[gid], all4[gid])

    def test_ep_size_must_divide_experts(self):
        def program(comm):
            DistributedMoELayer(8, 16, 5, comm, shared_rng=np.random.default_rng(1))

        with pytest.raises(Exception):
            run_spmd(program, 2)
