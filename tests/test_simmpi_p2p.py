"""Point-to-point semantics of the simulated MPI."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, DeadlockError
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_send_recv_object():
    def program(comm):
        if comm.rank == 0:
            comm.send({"x": [1, 2, 3]}, dest=1, tag=5)
            return None
        return comm.recv(source=0, tag=5)

    res = run_spmd(program, 2)
    assert res.returns[1] == {"x": [1, 2, 3]}


def test_send_recv_numpy_roundtrip():
    def program(comm):
        if comm.rank == 0:
            comm.send(np.arange(10, dtype=np.float32), dest=1)
            return None
        arr = comm.recv(source=0)
        return arr.sum()

    res = run_spmd(program, 2)
    assert res.returns[1] == pytest.approx(45.0)


def test_send_copies_buffer():
    """Mutating the send buffer after send must not affect the receiver."""

    def program(comm):
        if comm.rank == 0:
            buf = np.zeros(4)
            comm.send(buf, dest=1)
            buf[:] = 99.0
            comm.barrier()
            return None
        comm.barrier()
        return comm.recv(source=0)

    res = run_spmd(program, 2)
    assert np.allclose(res.returns[1], 0.0)


def test_tag_matching_out_of_order():
    """A recv with a specific tag skips earlier non-matching messages."""

    def program(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    res = run_spmd(program, 2)
    assert res.returns[1] == ("first", "second")


def test_any_source_any_tag():
    def program(comm):
        if comm.rank == 2:
            got = sorted(comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2))
            return got
        comm.send(comm.rank, dest=2, tag=comm.rank)
        return None

    res = run_spmd(program, 3)
    assert res.returns[2] == [0, 1]


def test_isend_irecv():
    def program(comm):
        if comm.rank == 0:
            req = comm.isend([1, 2], dest=1)
            req.wait()
            return None
        req = comm.irecv(source=0)
        return req.wait()

    res = run_spmd(program, 2)
    assert res.returns[1] == [1, 2]


def test_irecv_test_polling():
    def program(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=9)  # wait for the poke
            comm.send("payload", dest=1)
            return None
        req = comm.irecv(source=0)
        done, _ = req.test()
        assert not done  # nothing sent yet
        comm.send("poke", dest=0, tag=9)
        return req.wait()

    res = run_spmd(program, 2)
    assert res.returns[1] == "payload"


def test_sendrecv_exchange():
    def program(comm):
        peer = 1 - comm.rank
        return comm.sendrecv(comm.rank * 10, dest=peer, source=peer)

    res = run_spmd(program, 2)
    assert res.returns == [10, 0]


def test_probe():
    def program(comm):
        if comm.rank == 0:
            comm.send("x", dest=1)
            comm.barrier()
            return None
        comm.barrier()
        assert comm.probe(source=0)
        comm.recv(source=0)
        assert not comm.probe(source=0)
        return True

    res = run_spmd(program, 2)
    assert res.returns[1] is True


def test_recv_from_invalid_rank_raises():
    def program(comm):
        if comm.rank == 0:
            comm.recv(source=7)
        return None

    with pytest.raises(CommunicatorError):
        run_spmd(program, 2)


def test_recv_without_send_deadlocks():
    def program(comm):
        if comm.rank == 0:
            comm.recv(source=1)
        return None

    with pytest.raises(DeadlockError):
        run_spmd(program, 2, timeout=1.0)


def test_exception_in_one_rank_propagates():
    def program(comm):
        if comm.rank == 1:
            raise ValueError("rank 1 exploded")
        comm.recv(source=1)  # would deadlock without abort propagation

    with pytest.raises(ValueError, match="rank 1 exploded"):
        run_spmd(program, 2, timeout=30.0)


def test_world_size_one_works():
    res = run_spmd(lambda comm: comm.rank, 1)
    assert res.returns == [0]


def test_invalid_world_size():
    with pytest.raises(CommunicatorError):
        run_spmd(lambda comm: None, 0)


def test_pass_rng_gives_per_rank_generators():
    def program(comm, rng):
        return float(rng.random())

    res = run_spmd(program, 4, pass_rng=True, seed=3)
    assert len(set(res.returns)) == 4  # all ranks draw differently
    res2 = run_spmd(program, 4, pass_rng=True, seed=3)
    assert res.returns == res2.returns  # but reproducibly
