"""Model-based testing: random SPMD programs against a sequential oracle.

Hypothesis generates random sequences of collective operations; every rank
executes the same sequence on rank-dependent inputs, and the results are
checked against a simple sequential simulation of MPI semantics. This
catches cross-operation state bugs (round bookkeeping, stream mixing,
clock regressions) that single-op tests cannot.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network import sunway_network
from repro.simmpi import run_spmd

# An op is (kind, parameter). Inputs for rank r at step i are derived
# deterministically from (r, i), so the oracle can recompute them.
op_strategy = st.sampled_from(
    [
        ("allreduce", None),
        ("allgather", None),
        ("bcast", 0),
        ("bcast", -1),  # root = size - 1
        ("alltoall", None),
        ("barrier", None),
        ("reduce", 0),
        ("scatter", 0),
    ]
)


def _input(rank: int, step: int) -> int:
    return (rank * 37 + step * 101) % 1000


def _oracle(size: int, ops) -> list[list]:
    """Sequentially simulate the per-rank outputs of the op sequence."""
    outs: list[list] = [[] for _ in range(size)]
    for step, (kind, param) in enumerate(ops):
        vals = [_input(r, step) for r in range(size)]
        if kind == "allreduce":
            total = sum(vals)
            for r in range(size):
                outs[r].append(total)
        elif kind == "allgather":
            for r in range(size):
                outs[r].append(list(vals))
        elif kind == "bcast":
            root = param % size
            for r in range(size):
                outs[r].append(vals[root])
        elif kind == "alltoall":
            # rank r sends vals[r] * 10 + d to dest d.
            for r in range(size):
                outs[r].append([vals[s] * 10 + r for s in range(size)])
        elif kind == "barrier":
            for r in range(size):
                outs[r].append("b")
        elif kind == "reduce":
            root = param % size
            total = sum(vals)
            for r in range(size):
                outs[r].append(total if r == root else None)
        elif kind == "scatter":
            root = param % size
            chunks = [vals[root] * 10 + d for d in range(size)]
            for r in range(size):
                outs[r].append(chunks[r])
    return outs


def _program(comm, ops):
    out = []
    for step, (kind, param) in enumerate(ops):
        v = _input(comm.rank, step)
        if kind == "allreduce":
            out.append(comm.allreduce(v))
        elif kind == "allgather":
            out.append(comm.allgather(v))
        elif kind == "bcast":
            root = param % comm.size
            out.append(comm.bcast(v if comm.rank == root else None, root=root))
        elif kind == "alltoall":
            out.append(comm.alltoall([v * 10 + d for d in range(comm.size)]))
        elif kind == "barrier":
            comm.barrier()
            out.append("b")
        elif kind == "reduce":
            root = param % comm.size
            out.append(comm.reduce(v, root=root))
        elif kind == "scatter":
            root = param % comm.size
            data = [v * 10 + d for d in range(comm.size)] if comm.rank == root else None
            out.append(comm.scatter(data, root=root))
    return out


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(op_strategy, min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_random_programs_match_oracle(size, ops):
    res = run_spmd(_program, size, args=(ops,), timeout=60)
    expected = _oracle(size, ops)
    assert res.returns == expected


@given(
    st.integers(min_value=2, max_value=5),
    st.lists(op_strategy, min_size=1, max_size=10),
)
@settings(max_examples=15, deadline=None)
def test_random_programs_clock_monotone(size, ops):
    """With a network attached, clocks never regress and end >= 0."""

    def program(comm):
        last = comm.clock
        checkpoints = []
        for step, (kind, param) in enumerate(ops):
            _program_step(comm, step, kind, param)
            now = comm.clock
            checkpoints.append(now >= last)
            last = now
        return all(checkpoints)

    def _program_step(comm, step, kind, param):
        v = _input(comm.rank, step)
        if kind == "allreduce":
            comm.allreduce(v)
        elif kind == "allgather":
            comm.allgather(v)
        elif kind == "bcast":
            root = param % comm.size
            comm.bcast(v if comm.rank == root else None, root=root)
        elif kind == "alltoall":
            comm.alltoall([v] * comm.size)
        elif kind == "barrier":
            comm.barrier()
        elif kind == "reduce":
            comm.reduce(v, root=param % comm.size)
        elif kind == "scatter":
            root = param % comm.size
            data = [v] * comm.size if comm.rank == root else None
            comm.scatter(data, root=root)

    res = run_spmd(program, size, network=sunway_network(size), timeout=60)
    assert all(res.returns)
    assert res.simulated_time >= 0.0


@given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=30))
@settings(max_examples=10, deadline=None)
def test_p2p_ring_passes_token(size, rounds):
    """A token circulating a ring accumulates every rank's contribution."""

    def program(comm):
        nxt = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        token = 0
        for _ in range(rounds):
            if comm.rank == 0:
                comm.send(token + 1, dest=nxt)
                token = comm.recv(source=prev)
            else:
                token = comm.recv(source=prev)
                comm.send(token + 1, dest=nxt)
        return token

    res = run_spmd(program, size, timeout=60)
    assert res.returns[0] == rounds * size
