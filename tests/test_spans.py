"""Span tracing: tracer mechanics, the coverage invariant, fleet trees.

The load-bearing guarantees:

* :class:`Tracer` assigns deterministic creation-order ids, so two
  same-seed runs produce byte-identical JSON span dumps;
* :func:`span_coverage` accounts every virtual second of a root span to
  on-path children plus *explicit* gaps — malformed trees (overlapping
  or escaping children) raise instead of mis-attributing;
* every admitted fleet request carries exactly one root span whose
  on-path children cover its recorded latency — under crashes, hedges,
  and timeouts too;
* the null tracer records nothing, so tracing-off runs stay bit-identical
  to pre-span builds (same tokens, same traffic).
"""

import json

import pytest

from repro.errors import ConfigError
from repro.models import tiny_config
from repro.obs import NULL_TRACER, Span, Tracer, span_coverage
from repro.obs.export import write_enriched_trace
from repro.resilience import ElasticRunConfig, Supervisor
from repro.serve import FleetConfig, ServeConfig, run_fleet_serving
from repro.simmpi import FaultModel

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

CFG = tiny_config()


def _serve_cfg(**kw):
    base = dict(model=CFG, ep_size=2, num_requests=6, prompt_len=4,
                prompt_len_max=7, max_new_tokens=5, max_batch_size=3,
                seed=0, observe=True)
    base.update(kw)
    return ServeConfig(**base)


# --------------------------------------------------------------------- #
# Tracer mechanics
# --------------------------------------------------------------------- #


class TestTracer:
    def test_ids_follow_creation_order(self):
        tr = Tracer()
        a = tr.begin("root", 0.0, kind="request")
        b = tr.add("child", 1.0, 2.0, parent=a, kind="prefill")
        c = tr.instant("mark", 2.0, parent=a, kind="admission")
        assert [s.span_id for s in (a, b, c)] == [0, 1, 2]
        assert tr.children(a) == [b, c]
        assert b.duration == 1.0 and c.duration == 0.0

    def test_open_span_has_zero_duration_until_closed(self):
        tr = Tracer()
        span = tr.begin("work", 1.0)
        assert not span.closed and span.duration == 0.0
        tr.end(span, 3.5, outcome="ok")
        assert span.closed and span.duration == 2.5
        assert span.attrs["outcome"] == "ok"

    def test_double_close_raises(self):
        tr = Tracer()
        span = tr.add("x", 0.0, 1.0)
        with pytest.raises(ConfigError, match="already closed"):
            tr.end(span, 2.0)

    def test_end_before_start_raises(self):
        tr = Tracer()
        span = tr.begin("x", 5.0)
        with pytest.raises(ConfigError, match="before start"):
            tr.end(span, 4.0)

    def test_unknown_parent_raises(self):
        tr = Tracer()
        with pytest.raises(ConfigError, match="unknown parent"):
            tr.begin("x", 0.0, parent=42)

    def test_navigation(self):
        tr = Tracer()
        r1 = tr.add("req", 0.0, 2.0, kind="request")
        c1 = tr.add("prefill", 0.0, 1.0, parent=r1, kind="prefill")
        g1 = tr.add("inner", 0.2, 0.4, parent=c1)
        r2 = tr.add("req", 1.0, 3.0, kind="request")
        assert tr.roots() == [r1, r2]
        assert tr.subtree(r1) == [r1, c1, g1]
        assert tr.find(kind="request") == [r1, r2]
        assert tr.find(name="prefill") == [c1]
        assert len(tr) == 4

    def test_absorb_shifts_clocks_and_preserves_trees(self):
        inner = Tracer()
        root = inner.add("req", 0.0, 1.0, kind="request")
        inner.add("decode", 0.5, 1.0, parent=root, kind="decode")
        open_span = inner.begin("pending", 0.75)
        outer = Tracer()
        outer.add("before", 0.0, 10.0)
        outer.absorb(inner, clock_offset=10.0)
        absorbed_root = outer.find(name="req")[0]
        child = outer.children(absorbed_root)[0]
        assert (absorbed_root.t_start, absorbed_root.t_end) == (10.0, 11.0)
        assert (child.t_start, child.t_end) == (10.5, 11.0)
        assert child.parent_id == absorbed_root.span_id
        pending = outer.find(name="pending")[0]
        assert pending.t_start == 10.75 and pending.t_end is None
        assert open_span.t_end is None  # source untouched

    def test_absorb_null_tracer_is_noop(self):
        tr = Tracer()
        tr.add("x", 0.0, 1.0)
        tr.absorb(NULL_TRACER, clock_offset=5.0)
        assert len(tr) == 1

    def test_json_dump_is_byte_stable(self, tmp_path):
        def build():
            tr = Tracer()
            r = tr.add("req", 0.0, 2.0, kind="request", rid=3, tier=0)
            tr.add("decode", 1.0, 2.0, parent=r, kind="decode", tokens=5)
            return tr
        a = build().write_json(tmp_path / "a.json").read_bytes()
        b = build().write_json(tmp_path / "b.json").read_bytes()
        assert a == b
        dump = json.loads(a)
        assert [s["span_id"] for s in dump["spans"]] == [0, 1]
        assert dump["spans"][0]["attr_rid"] == 3

    def test_chrome_events_slices_and_flows(self):
        tr = Tracer()
        root = tr.add("req", 0.0, 2.0, kind="request")
        tr.add("decode", 1.0, 2.0, parent=root, kind="decode")
        events = tr.chrome_events(pid=7)
        slices = [e for e in events if e["ph"] == "X"]
        flows = [e for e in events if e["ph"] in ("s", "f")]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 2 and len(flows) == 2
        assert all(e["pid"] == 7 for e in slices)
        # Both spans render in the root's lane; flows bind parent->child.
        assert {e["tid"] for e in slices} == {root.span_id}
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert Tracer().chrome_events() == []

    def test_null_tracer_records_nothing(self):
        span = NULL_TRACER.add("x", 0.0, 1.0)
        NULL_TRACER.end(NULL_TRACER.begin("y", 0.0), 1.0)
        NULL_TRACER.instant("z", 0.0)
        assert span.span_id == -1
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.chrome_events() == []
        assert not NULL_TRACER.enabled


# --------------------------------------------------------------------- #
# The coverage invariant
# --------------------------------------------------------------------- #


class TestSpanCoverage:
    def test_children_plus_gaps_cover_the_root(self):
        tr = Tracer()
        root = tr.add("req", 0.0, 10.0, kind="request")
        tr.add("queue", 0.0, 3.0, parent=root, kind="queue")
        tr.add("decode", 4.0, 9.0, parent=root, kind="decode")
        cov = span_coverage(tr, root)
        assert cov["root_seconds"] == 10.0
        assert cov["span_seconds"] == 8.0
        assert cov["gaps"] == [(3.0, 4.0), (9.0, 10.0)]
        assert cov["span_seconds"] + cov["gap_seconds"] == cov["root_seconds"]

    def test_off_path_children_do_not_count(self):
        tr = Tracer()
        root = tr.add("req", 0.0, 4.0, kind="request")
        tr.add("decode", 0.0, 4.0, parent=root, kind="decode")
        # A hedge races the decode over the same interval: legal, off-path.
        tr.add("hedge", 1.0, 3.0, parent=root, kind="hedge")
        tr.add("probe", 2.0, 3.0, parent=root, off_path=True)
        cov = span_coverage(tr, root)
        assert cov["children"] == 1
        assert cov["span_seconds"] == 4.0 and cov["gap_seconds"] == 0.0

    def test_overlapping_children_raise(self):
        tr = Tracer()
        root = tr.add("req", 0.0, 10.0, kind="request")
        tr.add("a", 0.0, 5.0, parent=root)
        tr.add("b", 4.0, 8.0, parent=root)
        with pytest.raises(ConfigError, match="overlaps"):
            span_coverage(tr, root)

    def test_child_escaping_root_raises(self):
        tr = Tracer()
        root = tr.add("req", 0.0, 10.0, kind="request")
        tr.add("a", 5.0, 11.0, parent=root)
        with pytest.raises(ConfigError, match="escapes"):
            span_coverage(tr, root)

    def test_open_root_raises(self):
        tr = Tracer()
        root = tr.begin("req", 0.0, kind="request")
        with pytest.raises(ConfigError, match="still open"):
            span_coverage(tr, root)


# --------------------------------------------------------------------- #
# Fleet span trees, end to end
# --------------------------------------------------------------------- #


def _assert_fleet_coverage(fleet):
    spans = fleet.context.spans
    roots = [s for s in spans.roots() if s.kind == "request"]
    assert len(roots) == len(fleet.requests)
    by_rid = {r["rid"]: r for r in fleet.requests}
    assert sorted(r.attrs["rid"] for r in roots) == sorted(by_rid)
    for root in roots:
        cov = span_coverage(spans, root)
        rec = by_rid[root.attrs["rid"]]
        if rec["state"] == "done":
            assert cov["root_seconds"] == pytest.approx(rec["latency"], abs=1e-9)
    return spans, roots


class TestFleetSpans:
    def test_every_request_has_one_covered_root(self):
        fleet = run_fleet_serving(
            FleetConfig(serve=_serve_cfg(), replicas=2)
        )
        spans, roots = _assert_fleet_coverage(fleet)
        kinds = {s.kind for s in spans}
        assert {"request", "admission", "prefill", "decode"} <= kinds

    def test_crash_attempts_stay_covered(self):
        fleet = run_fleet_serving(
            FleetConfig(serve=_serve_cfg(num_requests=8, arrival_rate=200.0),
                        replicas=2, mtbf=0.005,
                        backoff_base=0.05, backoff_cap=0.4)
        )
        assert fleet.crashes >= 1
        spans, roots = _assert_fleet_coverage(fleet)
        retries = spans.find(kind="retry")
        assert retries, "crashed attempts should leave retry spans"
        assert all(s.attrs["why"] == "crash" for s in retries)

    def test_hedges_are_off_path_children(self):
        fleet = run_fleet_serving(
            FleetConfig(serve=_serve_cfg(num_requests=8), replicas=2,
                        hedge_after_ms=0.005)
        )
        assert fleet.hedges >= 1
        spans, roots = _assert_fleet_coverage(fleet)
        hedges = spans.find(kind="hedge")
        assert hedges and all(not s.on_path for s in hedges)
        assert all(s.parent_id is not None for s in hedges)

    def test_tracing_off_records_nothing(self):
        """With observe off the session carries the shared null tracer, so
        span emission costs nothing and output matches pre-span builds
        (telemetry itself costs modelled time, so only token content is
        comparable across the flag)."""
        def run(observe):
            return run_fleet_serving(
                FleetConfig(
                    serve=_serve_cfg(observe=observe, arrival_rate=200.0),
                    replicas=2, mtbf=0.005,
                    backoff_base=0.05, backoff_cap=0.4,
                )
            )
        off = run(False)
        assert not off.context.spans.enabled
        assert len(off.context.spans) == 0
        on = run(True)
        assert len(on.context.spans) > 0
        tokens = lambda fleet: {  # noqa: E731
            r["rid"]: (r["state"], tuple(r["tokens"])) for r in fleet.requests
        }
        assert tokens(on) == tokens(off)

    def test_span_dump_deterministic_across_runs(self):
        def dump():
            fleet = run_fleet_serving(
                FleetConfig(serve=_serve_cfg(arrival_rate=200.0), replicas=2)
            )
            return json.dumps(
                {"spans": fleet.context.spans.records()}, sort_keys=True
            )
        assert dump() == dump()

    def test_enriched_trace_carries_span_lanes(self, tmp_path):
        fleet = run_fleet_serving(
            FleetConfig(serve=_serve_cfg(trace=True), replicas=2)
        )
        path = write_enriched_trace(fleet.context, tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        span_slices = [e for e in events
                       if e.get("pid") == 1 and e.get("ph") == "X"]
        flows = [e for e in events if e.get("ph") in ("s", "f")]
        assert len(span_slices) == len(fleet.context.spans)
        assert flows, "parent-child flow arrows should be present"


# --------------------------------------------------------------------- #
# Plain single-engine span trees (emit_request_spans)
# --------------------------------------------------------------------- #


class TestEngineSpans:
    def test_plain_serving_trees_cover_latency(self):
        from repro.serve import emit_request_spans, run_serving

        result = run_serving(_serve_cfg(num_requests=8, arrival_rate=400.0))
        emit_request_spans(result)
        spans = result.context.spans
        roots = [s for s in spans.roots() if s.kind == "request"]
        assert len(roots) == len(result.requests)
        by_rid = {r["rid"]: r for r in result.requests}
        for root in roots:
            cov = span_coverage(spans, root)
            rec = by_rid[root.attrs["rid"]]
            if rec["state"] == "done":
                assert cov["root_seconds"] == pytest.approx(
                    rec["latency"], abs=1e-9
                )
        kinds = {s.kind for s in spans}
        assert {"request", "admission", "prefill", "decode"} <= kinds

    def test_unobserved_result_is_a_noop(self):
        from repro.serve import emit_request_spans, run_serving

        result = run_serving(_serve_cfg(observe=False))
        emit_request_spans(result)
        assert len(result.context.spans) == 0


# --------------------------------------------------------------------- #
# Supervisor launch/backoff spans
# --------------------------------------------------------------------- #


class TestSupervisorSpans:
    def test_launches_and_backoffs_become_spans(self, tmp_path):
        cfg = ElasticRunConfig(
            model=CFG, world_size=4, ep_size=2, total_steps=6,
            checkpoint_every=2, checkpoint_dir=tmp_path / "ckpt",
            batch_size=2, seq_len=8, seed=0, max_restarts=8, observe=True,
        )
        faults = FaultModel(seed=0, mtbf=1e-3, dead_nodes=(3,))
        res = Supervisor(cfg, faults=faults).run()
        assert res.restarts >= 1
        spans = res.context.spans
        launches = spans.find(kind="launch")
        assert len(launches) == len(res.world_history)
        assert all(s.closed for s in launches)
        assert launches[-1].attrs["outcome"] == "complete"
        assert any(s.attrs["outcome"] == "failure" for s in launches[:-1])
        backoffs = spans.find(kind="backoff")
        assert backoffs and all(
            s.duration == pytest.approx(s.attrs["seconds"]) for s in backoffs
        )
