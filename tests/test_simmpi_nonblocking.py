"""Nonblocking collectives: results, overlap accounting, deadlock safety."""

import numpy as np
import pytest

from repro.network import sunway_network
from repro.simmpi import SUM, run_spmd

WORLD = 4


def _net(size=WORLD):
    return sunway_network(size, supernode_size=2)


# --------------------------------------------------------------------- #
# Functional results match the blocking collectives
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("size", [1, 2, 4])
def test_iallreduce_matches_allreduce(size):
    def program(comm):
        blocking = comm.allreduce(comm.rank + 1.0)
        req = comm.iallreduce(comm.rank + 1.0, op=SUM)
        return blocking, req.wait()

    for blocking, nonblocking in run_spmd(program, size).returns:
        assert nonblocking == blocking


@pytest.mark.parametrize("size", [1, 2, 4])
def test_ialltoall_matches_alltoall(size):
    def program(comm):
        send = [np.full(3, 10 * comm.rank + d, dtype=np.float64)
                for d in range(comm.size)]
        blocking = comm.alltoall(send)
        got = comm.ialltoall(send).wait()
        return all(np.array_equal(a, b) for a, b in zip(blocking, got))

    assert all(run_spmd(program, size).returns)


@pytest.mark.parametrize("size", [1, 2, 4])
def test_iallgather_matches_allgather(size):
    def program(comm):
        blocking = comm.allgather(comm.rank * 2)
        return comm.iallgather(comm.rank * 2).wait() == blocking

    assert all(run_spmd(program, size).returns)


def test_ialltoall_result_is_private_copy():
    def program(comm):
        send = [np.zeros(2) for _ in range(comm.size)]
        got = comm.ialltoall(send).wait()
        got[0] += comm.rank + 1  # must not leak across ranks
        comm.barrier()
        return float(got[0].sum())

    res = run_spmd(program, 2)
    assert res.returns == [2.0, 4.0]


# --------------------------------------------------------------------- #
# Overlap accounting on the virtual clock
# --------------------------------------------------------------------- #


def _payload(comm):
    return [np.zeros(1 << 14) for _ in range(comm.size)]


def test_overlapped_compute_hides_comm_cost():
    """advance() between issue and wait shrinks the charged comm time."""

    def blocking(comm):
        comm.alltoall(_payload(comm))
        comm.advance(1e-3)
        return comm.clock

    def overlapped(comm):
        req = comm.ialltoall(_payload(comm))
        comm.advance(1e-3)
        req.wait()
        return comm.clock

    t_blocking = max(run_spmd(blocking, WORLD, network=_net()).returns)
    t_overlapped = max(run_spmd(overlapped, WORLD, network=_net()).returns)
    assert t_overlapped < t_blocking


def test_fully_hidden_collective_charges_nothing_extra():
    """Compute >= comm cost: wait() is free beyond the wire-time floor."""

    def program(comm):
        req = comm.ialltoall(_payload(comm))
        comm.advance(10.0)  # far larger than any modelled alltoall here
        req.wait()
        return comm.clock

    res = run_spmd(program, WORLD, network=_net())
    assert max(res.returns) == pytest.approx(10.0)
    overlapped = res.context.stats.overlapped_seconds["ialltoall"]
    exposed = res.context.stats.exposed_seconds["ialltoall"]
    assert overlapped > 0
    assert exposed == 0.0


def test_wait_without_compute_costs_like_blocking():
    def blocking(comm):
        comm.alltoall(_payload(comm))
        return comm.clock

    def eager_wait(comm):
        return (comm.ialltoall(_payload(comm)).wait(), comm.clock)[1]

    t_blocking = run_spmd(blocking, WORLD, network=_net()).returns
    t_eager = run_spmd(eager_wait, WORLD, network=_net()).returns
    assert t_eager == pytest.approx(t_blocking)


def test_overlap_recorded_in_trace_and_stats():
    def program(comm):
        req = comm.iallreduce(np.zeros(1 << 12))
        comm.advance(5e-4)
        req.wait()

    res = run_spmd(program, WORLD, network=_net(), trace=True)
    events = [e for e in res.context.trace_events if e.op == "iallreduce"]
    assert len(events) == WORLD
    assert all(e.hidden > 0 for e in events)
    assert res.context.stats.overlapped_seconds["iallreduce"] > 0


def test_isend_charges_bytes_on_wait():
    """isend cost (full p2p time) lands at wait(), net of overlap."""

    def program(comm):
        if comm.rank == 0:
            req = comm.isend(np.zeros(1 << 16), dest=1)
            t_issue = comm.clock
            req.wait()
            return t_issue, comm.clock
        return comm.recv(source=0) is not None

    res = run_spmd(program, 2, network=_net(2))
    t_issue, t_done = res.returns[0]
    assert t_issue == 0.0  # issue itself is free
    assert t_done > 0.0  # the wire time is charged at wait()


def test_isend_overlap_credits_compute():
    def program(comm):
        if comm.rank == 0:
            req = comm.isend(np.zeros(1 << 16), dest=1)
            comm.advance(10.0)
            req.wait()
            return comm.clock
        comm.recv(source=0)
        return None

    res = run_spmd(program, 2, network=_net(2))
    assert res.returns[0] == pytest.approx(10.0)


# --------------------------------------------------------------------- #
# Deadlock regression: waits are local, so wait order cannot matter
# --------------------------------------------------------------------- #


def test_interleaved_wait_orders_do_not_deadlock():
    """Ranks issue the same collective sequence but wait in different
    (even reversed) orders — completion must stay purely local."""

    def program(comm):
        req_a = comm.iallreduce(float(comm.rank))
        req_b = comm.ialltoall([comm.rank * 10 + d for d in range(comm.size)])
        req_c = comm.iallgather(comm.rank)
        reqs = {"a": req_a, "b": req_b, "c": req_c}
        orders = ["abc", "cba", "bca", "acb"]
        out = {k: reqs[k].wait() for k in orders[comm.rank % len(orders)]}
        return out["a"], out["b"], out["c"]

    res = run_spmd(program, WORLD, network=_net(), timeout=30.0)
    total = sum(range(WORLD))
    for rank, (a, b, c) in enumerate(res.returns):
        assert a == float(total)
        assert b == [src * 10 + rank for src in range(WORLD)]
        assert c == list(range(WORLD))


def test_mixed_blocking_between_nonblocking_waits():
    """A blocking collective issued while requests are outstanding still
    completes (rendezvous already happened at issue time)."""

    def program(comm):
        req = comm.ialltoall([comm.rank] * comm.size)
        total = comm.allreduce(1)
        got = req.wait()
        return total, got

    res = run_spmd(program, WORLD, network=_net(), timeout=30.0)
    for total, got in res.returns:
        assert total == WORLD
        assert got == list(range(WORLD))


# --------------------------------------------------------------------- #
# Satellite: sum-based alltoall byte accounting
# --------------------------------------------------------------------- #


def test_alltoall_bytes_are_sum_based():
    """Skewed exchanges are priced by actual off-rank bytes, not the max."""

    def program(comm):
        # rank 0 sends 1 KiB to rank 1 and 1 MiB to... no: make it skewed
        # per destination: big payload to the next rank, tiny elsewhere.
        send = [np.zeros(1, dtype=np.float64) for _ in range(comm.size)]
        send[(comm.rank + 1) % comm.size] = np.zeros(1024, dtype=np.float64)
        comm.alltoall(send)

    res = run_spmd(program, WORLD)
    # Off-rank bytes from rank 0: one 1024-row payload + two 1-row payloads
    # (the self-slot never hits the wire).
    expected = 1024 * 8 + 2 * 8
    assert res.context.stats.collective_bytes["alltoall"] == expected


def test_alltoall_skewed_cheaper_than_uniform_max():
    """The old max-based pricing charged this skewed exchange like a
    uniform big one; sum-based pricing must be strictly cheaper."""

    def skewed(comm):
        send = [np.zeros(8, dtype=np.float64) for _ in range(comm.size)]
        send[(comm.rank + 1) % comm.size] = np.zeros(1 << 15, dtype=np.float64)
        comm.alltoall(send)
        return comm.clock

    def uniform_big(comm):
        comm.alltoall([np.zeros(1 << 15, dtype=np.float64)
                       for _ in range(comm.size)])
        return comm.clock

    t_skewed = max(run_spmd(skewed, WORLD, network=_net()).returns)
    t_uniform = max(run_spmd(uniform_big, WORLD, network=_net()).returns)
    assert t_skewed < t_uniform
