"""Fault-tolerant training: checkpoint-restart recovery determinism."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, ConfigError
from repro.models import tiny_config
from repro.parallel import ResilientRunConfig, run_resilient_training
from repro.parallel.resilient import _latest_checkpoint
from repro.simmpi import FaultPlan

CFG = tiny_config(num_experts=4)


def make_cfg(tmp_path, **kw):
    defaults = dict(
        model=CFG, world_size=4, ep_size=2, total_steps=6,
        checkpoint_every=2, checkpoint_dir=tmp_path / "ckpts",
        batch_size=2, seq_len=8, seed=11,
    )
    defaults.update(kw)
    return ResilientRunConfig(**defaults)


class TestHealthyRun:
    def test_completes_without_restarts(self, tmp_path):
        res = run_resilient_training(make_cfg(tmp_path))
        assert res.restarts == 0
        assert len(res.losses) == 6
        assert res.checkpoint_steps == [2, 4, 6]

    def test_checkpoints_on_disk(self, tmp_path):
        run_resilient_training(make_cfg(tmp_path))
        d = tmp_path / "ckpts"
        assert (d / "step-000002" / "meta.json").exists()
        assert (d / "step-000006" / "dense.npz").exists()

    def test_loss_decreases(self, tmp_path):
        res = run_resilient_training(make_cfg(tmp_path, total_steps=10))
        assert res.losses[-1] < res.losses[0]


class TestFaultyRun:
    def _kill_plan(self, at_op):
        return FaultPlan().kill_rank(1, at_op=at_op)

    def test_recovers_from_rank_kill(self, tmp_path):
        # First launch dies quickly; second launch (healthy) completes.
        res = run_resilient_training(
            make_cfg(tmp_path),
            fault_plans=[self._kill_plan(at_op=60), None],
        )
        assert res.restarts == 1
        # Steps before the surviving segment's checkpoint died with the
        # crashed world; coverage resumes at that checkpoint.
        assert res.first_step + len(res.losses) == 6

    def test_recovered_run_matches_healthy_run(self, tmp_path):
        """Determinism: crash + restore reproduces the undisturbed
        trajectory exactly (the property real recovery systems target)."""
        healthy = run_resilient_training(make_cfg(tmp_path / "a"))
        faulted = run_resilient_training(
            make_cfg(tmp_path / "b"),
            fault_plans=[self._kill_plan(at_op=90), None],
        )
        assert faulted.restarts == 1
        overlap = healthy.losses[faulted.first_step:]
        assert np.allclose(overlap, faulted.losses, atol=1e-6)

    def test_multiple_failures(self, tmp_path):
        res = run_resilient_training(
            make_cfg(tmp_path),
            fault_plans=[self._kill_plan(50), self._kill_plan(50), None],
        )
        assert res.restarts == 2
        assert res.first_step + len(res.losses) == 6

    def test_gives_up_after_max_restarts(self, tmp_path):
        always_fail = [self._kill_plan(0)] * 10
        with pytest.raises(CommunicatorError, match="giving up"):
            run_resilient_training(
                make_cfg(tmp_path, max_restarts=2), fault_plans=always_fail
            )

    def test_immediate_failure_restarts_from_scratch(self, tmp_path):
        """A crash before the first checkpoint restarts from step 0."""
        res = run_resilient_training(
            make_cfg(tmp_path),
            fault_plans=[self._kill_plan(at_op=5), None],
        )
        assert res.restarts == 1
        # Crash before any checkpoint: the retry covers all steps.
        assert res.first_step == 0
        assert len(res.losses) == 6


class TestLatestCheckpoint:
    def test_empty_dir(self, tmp_path):
        assert _latest_checkpoint(tmp_path) == (None, 0)

    def test_picks_highest_complete(self, tmp_path):
        for step in (2, 4):
            d = tmp_path / f"step-{step:06d}"
            d.mkdir(parents=True)
            (d / "meta.json").write_text("{}")
        # A partial (crashed) save without meta.json must be ignored.
        (tmp_path / "step-000006").mkdir()
        path, step = _latest_checkpoint(tmp_path)
        assert step == 4
        assert path.name == "step-000004"

    def test_ignores_malformed_names(self, tmp_path):
        d = tmp_path / "step-xyz"
        d.mkdir()
        (d / "meta.json").write_text("{}")
        assert _latest_checkpoint(tmp_path) == (None, 0)


class TestConfigValidation:
    def test_invalid_steps(self, tmp_path):
        with pytest.raises(ConfigError):
            make_cfg(tmp_path, total_steps=0)
        with pytest.raises(ConfigError):
            make_cfg(tmp_path, checkpoint_every=0)
        with pytest.raises(ConfigError):
            make_cfg(tmp_path, max_restarts=-1)
