"""3D parallelism (pipe x data x expert): grid math, training, equivalence."""

import numpy as np
import pytest

from repro.data import Batch, ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.models import build_model, tiny_config
from repro.parallel import Grid3D, Trainer3D, build_groups3d
from repro.simmpi import run_spmd
from repro.train import Adam, SGD

CFG = tiny_config(n_layers=4, num_experts=4, aux_weight=0.0)


class TestGrid3D:
    def test_layout(self):
        g = Grid3D(world_size=8, pipe_size=2, ep_size=2)
        assert g.plane_size == 4
        assert g.dp_size == 2
        assert g.stage_of(5) == 1
        assert g.plane_rank_of(5) == 1

    def test_degenerate_grids(self):
        assert Grid3D(4, 1, 1).plane_size == 4  # pure DP
        assert Grid3D(4, 4, 1).plane_size == 1  # pure pipeline
        assert Grid3D(4, 1, 4).dp_size == 1     # pure EP

    def test_invalid(self):
        with pytest.raises(ConfigError):
            Grid3D(world_size=6, pipe_size=4, ep_size=1)
        with pytest.raises(ConfigError):
            Grid3D(world_size=8, pipe_size=2, ep_size=3)


class TestGroups3D:
    def test_communicator_shapes(self):
        def program(comm):
            g = build_groups3d(comm, pipe_size=2, ep_size=2)
            return (
                g.pipe.size, g.plane.world.size, g.plane.ep.size,
                g.plane.edp.size, g.stage, g.pipeline_id,
            )

        res = run_spmd(program, 8, timeout=300)
        for r, (pipe, plane, ep, edp, stage, pid) in enumerate(res.returns):
            assert pipe == 2
            assert plane == 4
            assert ep == 2
            assert edp == 2
            assert stage == r // 4
            assert pid == r % 4

    def test_pipeline_members_cross_planes(self):
        def program(comm):
            g = build_groups3d(comm, pipe_size=2, ep_size=2)
            return g.pipe.members

        res = run_spmd(program, 8, timeout=300)
        assert res.returns[1] == (1, 5)  # same plane position, both stages


def _train_3d(comm, pipe, ep, steps=4, cfg=CFG, seed=3, microbatches=2):
    groups = build_groups3d(comm, pipe_size=pipe, ep_size=ep)
    trainer = Trainer3D(cfg, groups, num_microbatches=microbatches, seed=seed)
    trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=3e-3))
    corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=5)
    loader = ShardedLoader(
        corpus, 4, 8, dp_rank=groups.pipeline_id, dp_size=groups.grid.plane_size
    )
    return [trainer.train_step(loader.get_batch(s)).global_loss for s in range(steps)]


class TestTrainer3D:
    def test_all_ranks_agree_and_converge(self):
        res = run_spmd(_train_3d, 8, args=(2, 2, 6), timeout=600)
        base = res.returns[0]
        for r in res.returns[1:]:
            assert np.allclose(r, base)
        assert base[-1] < base[0]

    def test_requires_attached_optimizer(self):
        def program(comm):
            groups = build_groups3d(comm, 2, 1)
            trainer = Trainer3D(CFG, groups, num_microbatches=1)
            trainer.train_step(Batch(np.zeros((2, 8), dtype=np.int64),
                                     np.zeros((2, 8), dtype=np.int64), 0))

        with pytest.raises(ConfigError):
            run_spmd(program, 2, timeout=300)

    def test_grid_shape_independence(self):
        """The same global problem gives the same loss trajectory under
        every 3D factorization (placement never changes numerics)."""
        shapes = [
            (4, 1, 1),  # pure DP over 4 pipelines of 1 stage
            (4, 2, 1),  # 2 stages x 2 pipelines
            (4, 1, 2),  # MoDa: ep=2, dp=2
            (4, 2, 2),  # full 3D on 4 ranks: 2 stages x (dp1 x ep2)
            (8, 2, 2),  # full 3D on 8 ranks
        ]
        trajectories = {}
        for world, pipe, ep in shapes:
            res = run_spmd(_train_3d, world, args=(pipe, ep, 3), timeout=600)
            trajectories[(world, pipe, ep)] = res.returns[0]
        # Same plane width => identical global batch => identical losses.
        # (4,1,1) plane=4; (4,1,2) plane=4; (8,2,2) plane=4 — all match.
        a = trajectories[(4, 1, 1)]
        assert np.allclose(trajectories[(4, 1, 2)], a, atol=1e-4)
        assert np.allclose(trajectories[(8, 2, 2)], a, atol=1e-4)
        # (4,2,1) and (4,2,2) have plane=2 (different data) but must agree
        # with each other.
        b = trajectories[(4, 2, 1)]
        assert np.allclose(trajectories[(4, 2, 2)], b, atol=1e-4)

    def test_matches_single_process_reference(self):
        """3D first-step loss == single-process loss on the global batch."""
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=5)
        plane = 2
        batches = [
            ShardedLoader(corpus, 4, 8, dp_rank=i, dp_size=plane).get_batch(0)
            for i in range(plane)
        ]
        # Reference: a MoDa-built model on one rank (expert weights are
        # seeded per global expert id, matching the 3D construction; a
        # plain build_model draws experts from a different stream).
        from repro.parallel import build_groups, build_moda_model

        def build_ref(comm):
            return build_moda_model(CFG, build_groups(comm, 1), seed=3)

        ref = run_spmd(build_ref, 1, timeout=300).returns[0]
        ref_loss = float(np.mean([
            ref.loss(b.tokens, b.targets).item() for b in batches
        ]))

        def program(comm):
            groups = build_groups3d(comm, pipe_size=2, ep_size=2)
            trainer = Trainer3D(CFG, groups, num_microbatches=2, seed=3)
            trainer.attach_optimizer(SGD(trainer.stage.parameters(), lr=1e-9))
            loader = ShardedLoader(
                corpus, 4, 8, dp_rank=groups.pipeline_id,
                dp_size=groups.grid.plane_size,
            )
            return trainer.train_step(loader.get_batch(0)).global_loss

        res = run_spmd(program, 4, timeout=600)
        assert res.returns[0] == pytest.approx(ref_loss, abs=1e-5)

    def test_fp16_scaled_3d_step(self):
        from repro.amp import DynamicLossScaler

        def program(comm):
            groups = build_groups3d(comm, pipe_size=2, ep_size=2)
            scaler = DynamicLossScaler(init_scale=2.0**8, growth_interval=10)
            trainer = Trainer3D(CFG, groups, num_microbatches=2, seed=3,
                                scaler=scaler)
            trainer.attach_optimizer(Adam(trainer.stage.parameters(), lr=3e-3))
            corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, seed=5)
            loader = ShardedLoader(corpus, 4, 8, dp_rank=groups.pipeline_id,
                                   dp_size=groups.grid.plane_size)
            out = [trainer.train_step(loader.get_batch(s)) for s in range(3)]
            return [(r.global_loss, r.loss_scale, r.skipped) for r in out]

        res = run_spmd(program, 8, timeout=600)
        for per_rank in res.returns:
            for loss, scale, skipped in per_rank:
                assert np.isfinite(loss)
                assert scale >= 1.0
