"""Mixed precision: loss scaler state machine, overflow detection, casting."""

import numpy as np
import pytest

from repro.amp import DynamicLossScaler, cast_model, grads_have_overflow, model_dtype
from repro.errors import ConfigError
from repro.models import Linear, Parameter, build_model, tiny_config


class TestOverflowDetection:
    def test_clean_grads(self):
        p = Parameter(np.zeros(3))
        p.grad = np.ones(3, dtype=np.float32)
        assert not grads_have_overflow([p])

    def test_inf_detected(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([1.0, np.inf, 0.0], dtype=np.float32)
        assert grads_have_overflow([p])

    def test_nan_detected(self):
        p = Parameter(np.zeros(1))
        p.grad = np.array([np.nan], dtype=np.float32)
        assert grads_have_overflow([p])

    def test_none_grads_skipped(self):
        assert not grads_have_overflow([Parameter(np.zeros(2))])


class TestScalerStateMachine:
    def test_backoff_on_overflow(self):
        s = DynamicLossScaler(init_scale=1024.0)
        s.update(found_overflow=True)
        assert s.scale == 512.0
        assert s.overflow_count == 1

    def test_growth_after_interval(self):
        s = DynamicLossScaler(init_scale=1024.0, growth_interval=3)
        for _ in range(3):
            s.update(found_overflow=False)
        assert s.scale == 2048.0

    def test_overflow_resets_growth_counter(self):
        s = DynamicLossScaler(init_scale=1024.0, growth_interval=3)
        s.update(False)
        s.update(False)
        s.update(True)  # back to 512, counter reset
        s.update(False)
        s.update(False)
        assert s.scale == 512.0  # not grown yet

    def test_min_scale_floor(self):
        s = DynamicLossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(10):
            s.update(True)
        assert s.scale == 1.0

    def test_max_scale_ceiling(self):
        s = DynamicLossScaler(init_scale=2.0**23, growth_interval=1, max_scale=2.0**24)
        for _ in range(10):
            s.update(False)
        assert s.scale == 2.0**24

    def test_inv_scale(self):
        s = DynamicLossScaler(init_scale=8.0)
        assert s.inv_scale == pytest.approx(0.125)

    def test_state_dict_roundtrip(self):
        s = DynamicLossScaler(init_scale=1024.0, growth_interval=5)
        s.update(True)
        s.update(False)
        s2 = DynamicLossScaler()
        s2.load_state_dict(s.state_dict())
        assert s2.scale == s.scale
        assert s2.overflow_count == 1

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DynamicLossScaler(init_scale=-1.0)
        with pytest.raises(ConfigError):
            DynamicLossScaler(growth_factor=1.0)
        with pytest.raises(ConfigError):
            DynamicLossScaler(backoff_factor=1.5)
        with pytest.raises(ConfigError):
            DynamicLossScaler(init_scale=0.5, min_scale=1.0)


class TestCasting:
    def test_cast_model_dtype(self):
        model = build_model(tiny_config())
        assert model_dtype(model) == "fp32"
        cast_model(model, "fp16")
        assert model_dtype(model) == "fp16"
        assert all(p.dtype.name == "fp16" for p in model.parameters())

    def test_cast_quantizes_values(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 4, rng)
        lin.weight.data[0, 0] = 1.0 + 2**-12  # not representable in fp16
        cast_model(lin, "fp16")
        assert lin.weight.data[0, 0] in (1.0, 1.0 + 2**-11)

    def test_cast_clears_grads(self):
        lin = Linear(2, 2, np.random.default_rng(0))
        lin.weight.grad = np.ones((2, 2), dtype=np.float32)
        cast_model(lin, "bf16")
        assert lin.weight.grad is None

    def test_cast_back_to_fp32(self):
        model = build_model(tiny_config())
        cast_model(model, "fp16")
        cast_model(model, "fp32")
        assert model_dtype(model) == "fp32"

    def test_forward_works_after_cast(self):
        cfg = tiny_config()
        model = cast_model(build_model(cfg), "fp16")
        tokens = np.random.default_rng(0).integers(0, cfg.vocab_size, size=(2, 4))
        loss = model.loss(tokens, tokens)
        assert np.isfinite(loss.item())
