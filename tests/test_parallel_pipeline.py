"""Pipeline parallelism: stage slicing, GPipe schedule, exact equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import build_model, tiny_config
from repro.parallel import GPipeRunner, PipelineStage, pipeline_bubble_fraction, stage_bounds
from repro.simmpi import run_spmd
from repro.train import Adam

# aux_weight=0 for exact-equivalence tests: the balance loss is not linear
# in the batch partition, so microbatched aux differs from full-batch aux
# by design (same is true of per-rank aux in data parallelism).
CFG = tiny_config(n_layers=4, aux_weight=0.0)
RNG = np.random.default_rng(0)


class TestBubbleMath:
    def test_no_bubble_single_stage(self):
        assert pipeline_bubble_fraction(1, 4) == 0.0

    def test_classic_formula(self):
        assert pipeline_bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert pipeline_bubble_fraction(4, 16) == pytest.approx(3 / 19)

    def test_more_microbatches_smaller_bubble(self):
        assert pipeline_bubble_fraction(4, 32) < pipeline_bubble_fraction(4, 4)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            pipeline_bubble_fraction(0, 4)


class TestStageBounds:
    def test_even_split(self):
        assert stage_bounds(4, 2, 0) == (0, 2)
        assert stage_bounds(4, 2, 1) == (2, 4)

    def test_uneven_split_covers_all(self):
        spans = [stage_bounds(7, 3, s) for s in range(3)]
        assert spans[0][0] == 0 and spans[-1][1] == 7
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_too_many_stages(self):
        with pytest.raises(ConfigError):
            stage_bounds(2, 3, 0)


class TestPipelineStage:
    def test_stage_weights_match_full_model_slice(self):
        full = build_model(CFG, seed=7)
        s0 = PipelineStage(CFG, num_stages=2, stage=0, seed=7)
        s1 = PipelineStage(CFG, num_stages=2, stage=1, seed=7)
        assert np.array_equal(s0.tok_emb.weight.data, full.tok_emb.weight.data)
        assert np.array_equal(
            s0.blocks[0].attn.qkv.weight.data, full.blocks[0].attn.qkv.weight.data
        )
        assert np.array_equal(
            s1.blocks[0].attn.qkv.weight.data, full.blocks[2].attn.qkv.weight.data
        )
        assert np.array_equal(s1.lm_head.weight.data, full.lm_head.weight.data)

    def test_stage_roles(self):
        s0 = PipelineStage(CFG, 2, 0, seed=1)
        s1 = PipelineStage(CFG, 2, 1, seed=1)
        assert s0.is_first and not s0.is_last
        assert s1.is_last and not s1.is_first
        assert not hasattr(s1, "tok_emb")
        assert not hasattr(s0, "lm_head")

    def test_only_first_stage_embeds(self):
        s1 = PipelineStage(CFG, 2, 1, seed=1)
        with pytest.raises(ConfigError):
            s1.embed(np.zeros((1, 4), dtype=np.int64))

    def test_stage_param_partition_covers_model(self):
        full = build_model(CFG, seed=3)
        total = sum(
            PipelineStage(CFG, 3, s, seed=3).num_parameters() for s in range(3)
        )
        assert total == full.num_parameters()


def _reference_grads(tokens, targets, seed):
    model = build_model(CFG, seed=seed)
    model.loss(tokens, targets).backward()
    return model, {n: (p.grad.copy() if p.grad is not None else None)
                   for n, p in model.named_parameters()}


class TestGPipeEquivalence:
    @pytest.mark.parametrize("stages,microbatches", [(2, 1), (2, 2), (4, 4), (2, 4)])
    def test_loss_matches_single_process(self, stages, microbatches):
        tokens = RNG.integers(0, CFG.vocab_size, size=(4, 8))
        targets = RNG.integers(0, CFG.vocab_size, size=(4, 8))
        ref = build_model(CFG, seed=11)
        ref_loss = ref.loss(tokens, targets).item()

        def program(comm):
            runner = GPipeRunner(CFG, comm, num_microbatches=microbatches, seed=11)
            return runner.train_step(tokens, targets)

        res = run_spmd(program, stages, timeout=300)
        for loss in res.returns:
            assert loss == pytest.approx(ref_loss, abs=1e-5)

    def test_gradients_match_single_process(self):
        tokens = RNG.integers(0, CFG.vocab_size, size=(4, 8))
        targets = RNG.integers(0, CFG.vocab_size, size=(4, 8))
        _, ref_grads = _reference_grads(tokens, targets, seed=13)

        def program(comm):
            runner = GPipeRunner(CFG, comm, num_microbatches=2, seed=13)
            runner.train_step(tokens, targets)
            # Map stage-local names back to full-model names.
            out = {}
            lo = runner.stage.lo
            for name, p in runner.stage.named_parameters():
                if name.startswith("blocks."):
                    parts = name.split(".")
                    parts[1] = str(int(parts[1]) + lo)
                    name = ".".join(parts)
                out[name] = p.grad.copy() if p.grad is not None else None
            return out

        res = run_spmd(program, 2, timeout=300)
        combined = {}
        for d in res.returns:
            combined.update(d)
        for name, ref in ref_grads.items():
            got = combined.get(name)
            if ref is None:
                assert got is None or np.allclose(got, 0)
                continue
            assert got is not None, f"missing grad for {name}"
            assert np.allclose(got, ref, atol=1e-5), f"grad mismatch for {name}"

    def test_training_converges(self):
        from repro.data import ShardedLoader, SyntheticCorpus

        cfg = tiny_config(n_layers=4)  # aux on: functional check only

        def program(comm):
            runner = GPipeRunner(cfg, comm, num_microbatches=2, seed=1)
            opt = Adam(runner.stage.parameters(), lr=3e-3)
            corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=2)
            loader = ShardedLoader(corpus, 4, 8)
            losses = []
            for step in range(8):
                batch = loader.get_batch(step)
                runner.stage.zero_grad()
                losses.append(runner.train_step(batch.tokens, batch.targets))
                opt.step()
            return losses

        res = run_spmd(program, 2, timeout=300)
        losses = res.returns[0]
        assert losses[-1] < losses[0]
        assert np.allclose(res.returns[0], res.returns[1])

    def test_batch_must_divide_microbatches(self):
        def program(comm):
            runner = GPipeRunner(CFG, comm, num_microbatches=3, seed=1)
            runner.train_step(
                np.zeros((4, 8), dtype=np.int64), np.zeros((4, 8), dtype=np.int64)
            )

        with pytest.raises(ConfigError):
            run_spmd(program, 2, timeout=60)

    def test_pipeline_comm_timed(self):
        """Stage boundaries generate p2p traffic with virtual time."""
        from repro.network import flat_network

        tokens = RNG.integers(0, CFG.vocab_size, size=(4, 8))

        def program(comm):
            runner = GPipeRunner(CFG, comm, num_microbatches=4, seed=1)
            runner.train_step(tokens, tokens)

        res = run_spmd(program, 2, network=flat_network(2), timeout=300)
        assert res.simulated_time > 0
        # 4 microbatches x (1 fwd + 1 bwd) across one boundary.
        assert res.stats.p2p_messages == 8
