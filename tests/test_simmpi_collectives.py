"""Collective semantics of the simulated MPI (functional correctness)."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.simmpi import MAX, MIN, PROD, SUM, run_spmd

SIZES = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("size", SIZES)
def test_bcast_scalar(size):
    res = run_spmd(lambda c: c.bcast(c.rank * 7 + 1, root=0), size)
    assert res.returns == [1] * size


def test_bcast_from_nonzero_root():
    res = run_spmd(lambda c: c.bcast("hello" if c.rank == 2 else None, root=2), 4)
    assert res.returns == ["hello"] * 4


def test_bcast_array_is_private_copy():
    def program(comm):
        arr = comm.bcast(np.zeros(3) if comm.rank == 0 else None, root=0)
        arr += comm.rank  # must not leak to other ranks
        comm.barrier()
        return float(arr.sum())

    res = run_spmd(program, 3)
    assert res.returns == [0.0, 3.0, 6.0]


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_sum_scalar(size):
    res = run_spmd(lambda c: c.allreduce(c.rank + 1), size)
    assert res.returns == [size * (size + 1) // 2] * size


def test_allreduce_ops():
    def program(comm):
        v = comm.rank + 1
        return (
            comm.allreduce(v, op=SUM),
            comm.allreduce(v, op=MAX),
            comm.allreduce(v, op=MIN),
            comm.allreduce(v, op=PROD),
        )

    res = run_spmd(program, 4)
    assert res.returns[0] == (10, 4, 1, 24)


def test_allreduce_arrays_elementwise():
    def program(comm):
        x = np.array([comm.rank, -comm.rank], dtype=np.float64)
        return comm.allreduce(x, op=MAX)

    res = run_spmd(program, 4)
    assert np.allclose(res.returns[0], [3, 0])


def test_allreduce_unknown_op():
    def program(comm):
        comm.allreduce(1, op="median")

    with pytest.raises(CommunicatorError):
        run_spmd(program, 2)


def test_reduce_root_only():
    def program(comm):
        return comm.reduce(comm.rank, root=1)

    res = run_spmd(program, 4)
    assert res.returns == [None, 6, None, None]


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    res = run_spmd(lambda c: c.allgather(c.rank**2), size)
    assert res.returns == [[r**2 for r in range(size)]] * size


def test_gather_root_only():
    res = run_spmd(lambda c: c.gather(c.rank, root=0), 4)
    assert res.returns[0] == [0, 1, 2, 3]
    assert res.returns[1] is None


def test_scatter():
    def program(comm):
        data = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(data, root=0)

    res = run_spmd(program, 4)
    assert res.returns == ["item0", "item1", "item2", "item3"]


def test_scatter_wrong_length_raises():
    def program(comm):
        data = [1, 2] if comm.rank == 0 else None
        comm.scatter(data, root=0)

    with pytest.raises(CommunicatorError):
        run_spmd(program, 3)


@pytest.mark.parametrize("size", SIZES)
def test_alltoall_permutation(size):
    def program(comm):
        send = [comm.rank * 100 + d for d in range(comm.size)]
        return comm.alltoall(send)

    res = run_spmd(program, size)
    for r in range(size):
        assert res.returns[r] == [s * 100 + r for s in range(size)]


def test_alltoall_wrong_length():
    def program(comm):
        comm.alltoall([1])

    with pytest.raises(CommunicatorError):
        run_spmd(program, 3)


def test_alltoall_variable_sizes():
    """Alltoallv-style usage: each pair gets a differently-sized array."""

    def program(comm):
        send = [np.full(comm.rank + d + 1, comm.rank, dtype=np.int64) for d in range(comm.size)]
        got = comm.alltoall(send)
        return [int(a.sum()) for a in got]

    res = run_spmd(program, 3)
    # rank r receives from s an array of length s + r + 1 filled with s.
    for r in range(3):
        assert res.returns[r] == [s * (s + r + 1) for s in range(3)]


def test_reduce_scatter():
    def program(comm):
        # Rank s contributes chunk j = s * 10 + j.
        chunks = [comm.rank * 10 + j for j in range(comm.size)]
        return comm.reduce_scatter(chunks)

    res = run_spmd(program, 4)
    # Rank r receives sum_s (s*10 + r) = 10*6 + 4r.
    assert res.returns == [60 + 4 * r for r in range(4)]


def test_reduce_scatter_wrong_length():
    def program(comm):
        comm.reduce_scatter([1])

    with pytest.raises(CommunicatorError):
        run_spmd(program, 2)


def test_barrier_completes():
    res = run_spmd(lambda c: (c.barrier(), c.rank)[1], 6)
    assert res.returns == list(range(6))


def test_collective_mismatch_detected():
    def program(comm):
        if comm.rank == 0:
            comm.barrier()
        else:
            comm.allreduce(1)

    with pytest.raises(CommunicatorError, match="mismatch"):
        run_spmd(program, 2)


def test_collectives_stream_many_rounds():
    """Many back-to-back collectives keep their rounds separated."""

    def program(comm):
        total = 0
        for i in range(50):
            total += comm.allreduce(comm.rank + i)
        return total

    res = run_spmd(program, 3)
    expected = sum(sum(r + i for r in range(3)) for i in range(50))
    assert res.returns == [expected] * 3
