"""Synthetic corpus and sharded loader: determinism, disjointness, Zipf shape."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Batch, ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError, PartitionError


class TestCorpus:
    def test_tokens_in_range(self):
        c = SyntheticCorpus(vocab_size=64, seed=0)
        sample = c.sample(1000)
        assert sample.min() >= 0
        assert sample.max() < 64

    def test_deterministic(self):
        a = SyntheticCorpus(vocab_size=64, seed=1).sample(100)
        b = SyntheticCorpus(vocab_size=64, seed=1).sample(100)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        c = SyntheticCorpus(vocab_size=64, seed=1)
        assert not np.array_equal(c.sample(100, stream=0), c.sample(100, stream=1))

    def test_zipf_marginal_is_skewed(self):
        c = SyntheticCorpus(vocab_size=100, zipf_alpha=1.2, seed=0)
        assert c.marginal[0] > 10 * c.marginal[50]
        assert c.marginal.sum() == pytest.approx(1.0)

    def test_predictable_stream_has_structure(self):
        """With predictability=1 every transition follows the table."""
        c = SyntheticCorpus(vocab_size=32, predictability=1.0, seed=2)
        s = c.sample(500)
        follows = sum(s[i + 1] == c.successor[s[i]] for i in range(len(s) - 1))
        assert follows == len(s) - 1

    def test_unpredictable_stream_has_no_structure(self):
        c = SyntheticCorpus(vocab_size=32, predictability=0.0, seed=2)
        s = c.sample(2000)
        follows = sum(s[i + 1] == c.successor[s[i]] for i in range(len(s) - 1))
        assert follows < 300  # chance level for a Zipf marginal

    def test_batch_shapes_and_shift(self):
        c = SyntheticCorpus(vocab_size=64, seed=0)
        tokens, targets = c.batch(4, 16, stream=3)
        assert tokens.shape == targets.shape == (4, 16)
        # Targets are the next-token shift of the same underlying block.
        assert np.array_equal(tokens[:, 1:], targets[:, :-1])

    def test_entropy_positive(self):
        c = SyntheticCorpus(vocab_size=64)
        assert 0 < c.entropy_bits() < np.log2(64) + 1e-9

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SyntheticCorpus(vocab_size=1)
        with pytest.raises(ConfigError):
            SyntheticCorpus(predictability=1.5)
        with pytest.raises(ConfigError):
            SyntheticCorpus(zipf_alpha=0.0)
        with pytest.raises(ConfigError):
            SyntheticCorpus().sample(0)


class TestShardedLoader:
    def _corpus(self):
        return SyntheticCorpus(vocab_size=64, seed=5)

    def test_batch_shape(self):
        loader = ShardedLoader(self._corpus(), batch_size=3, seq_len=8)
        b = loader.get_batch(0)
        assert isinstance(b, Batch)
        assert b.tokens.shape == (3, 8)
        assert b.num_tokens == 24

    def test_deterministic_per_step(self):
        loader = ShardedLoader(self._corpus(), 2, 8)
        assert np.array_equal(loader.get_batch(5).tokens, loader.get_batch(5).tokens)

    def test_ranks_get_disjoint_streams(self):
        c = self._corpus()
        l0 = ShardedLoader(c, 2, 8, dp_rank=0, dp_size=4)
        l1 = ShardedLoader(c, 2, 8, dp_rank=1, dp_size=4)
        assert not np.array_equal(l0.get_batch(0).tokens, l1.get_batch(0).tokens)

    def test_steps_get_fresh_data(self):
        loader = ShardedLoader(self._corpus(), 2, 8)
        assert not np.array_equal(loader.get_batch(0).tokens, loader.get_batch(1).tokens)

    def test_stream_ids_do_not_collide_across_rank_step(self):
        """Rank r step s uses stream s*P+r: verify no accidental reuse."""
        c = self._corpus()
        seen = set()
        for step in range(3):
            for rank in range(4):
                loader = ShardedLoader(c, 1, 8, dp_rank=rank, dp_size=4)
                key = loader.get_batch(step).tokens.tobytes()
                assert key not in seen
                seen.add(key)

    def test_iter_batches(self):
        loader = ShardedLoader(self._corpus(), 1, 4)
        batches = list(loader.iter_batches(3, start_step=2))
        assert [b.step for b in batches] == [2, 3, 4]

    def test_global_batch_tokens(self):
        loader = ShardedLoader(self._corpus(), 4, 16, dp_rank=0, dp_size=8)
        assert loader.global_batch_tokens == 4 * 16 * 8

    def test_invalid_coords(self):
        with pytest.raises(PartitionError):
            ShardedLoader(self._corpus(), 1, 8, dp_rank=4, dp_size=4)
        with pytest.raises(PartitionError):
            ShardedLoader(self._corpus(), 0, 8)
        with pytest.raises(PartitionError):
            ShardedLoader(self._corpus(), 1, 8).get_batch(-1)

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_batch_pure_function_of_step(self, step, dp_size):
        c = SyntheticCorpus(vocab_size=32, seed=9)
        loader = ShardedLoader(c, 1, 4, dp_rank=0, dp_size=dp_size)
        a = loader.get_batch(step)
        b = loader.get_batch(step)
        assert np.array_equal(a.tokens, b.tokens)
        assert np.array_equal(a.targets, b.targets)
