"""Distributed checkpointing: sharded save, layout-independent restore."""

import numpy as np
import pytest

from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import CheckpointError
from repro.models import tiny_config
from repro.parallel import (
    MoDaTrainer,
    build_groups,
    build_moda_model,
    dense_state,
    global_expert_state,
    load_distributed,
    named_optimizer_state,
    save_distributed,
)
from repro.simmpi import run_spmd
from repro.train import Adam

CFG = tiny_config(num_experts=4)


def _save_run(tmp_path, world, ep, seed=21, perturb=False):
    """Train-free save: build, optionally perturb deterministically, save."""

    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)
        if perturb:
            for name, p in model.named_parameters():
                p.data = p.data + 0.001  # recognizable change
        save_distributed(tmp_path / "ckpt", model, groups, step=7)
        return global_expert_state(model), dense_state(model)

    return run_spmd(program, world, timeout=300)


def _load_run(tmp_path, world, ep, seed=99):
    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)  # different init
        meta = load_distributed(tmp_path / "ckpt", model)
        return meta, global_expert_state(model), dense_state(model)

    return run_spmd(program, world, timeout=300)


class TestSaveLoadSameLayout:
    def test_roundtrip(self, tmp_path):
        saved = _save_run(tmp_path, world=4, ep=2)
        loaded = _load_run(tmp_path, world=4, ep=2)
        meta = loaded.returns[0][0]
        assert meta["step"] == 7
        assert meta["ep_size"] == 2
        # Dense params restored identically on every rank.
        ref_dense = saved.returns[0][1]
        for _, _, dense in loaded.returns:
            for k, v in dense.items():
                assert np.array_equal(v, ref_dense[k]), k

    def test_expert_shards_restored(self, tmp_path):
        saved = _save_run(tmp_path, world=4, ep=2)
        loaded = _load_run(tmp_path, world=4, ep=2)
        ref_experts = {}
        for experts, _ in saved.returns:
            ref_experts.update(experts)
        got_experts = {}
        for _, experts, _ in loaded.returns:
            got_experts.update(experts)
        assert set(got_experts) == set(ref_experts)
        for k in ref_experts:
            assert np.array_equal(got_experts[k], ref_experts[k]), k

    def test_checkpoint_files_layout(self, tmp_path):
        _save_run(tmp_path, world=4, ep=2)
        d = tmp_path / "ckpt"
        assert (d / "dense.npz").exists()
        assert (d / "meta.json").exists()
        assert (d / "experts_0of2.npz").exists()
        assert (d / "experts_1of2.npz").exists()


class TestResharding:
    @pytest.mark.parametrize("save_ep,load_world,load_ep", [
        (4, 2, 2),   # shrink EP width
        (2, 4, 4),   # grow EP width
        (4, 1, 1),   # collapse to a single process
    ])
    def test_reshard(self, tmp_path, save_ep, load_world, load_ep):
        saved = _save_run(tmp_path, world=save_ep, ep=save_ep)
        ref_experts = {}
        for experts, _ in saved.returns:
            ref_experts.update(experts)
        ref_dense = saved.returns[0][1]

        loaded = _load_run(tmp_path, world=load_world, ep=load_ep)
        got_experts = {}
        for _, experts, dense in loaded.returns:
            got_experts.update(experts)
            for k, v in dense.items():
                assert np.array_equal(v, ref_dense[k]), k
        assert set(got_experts) == set(ref_experts)
        for k in ref_experts:
            assert np.array_equal(got_experts[k], ref_experts[k]), k

    def test_forward_identical_after_reshard(self, tmp_path):
        """The restored model computes the same function under a new layout."""
        _save_run(tmp_path, world=4, ep=4, perturb=True)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, CFG.vocab_size, size=(2, 8))

        def forward_program(comm, ep):
            groups = build_groups(comm, ep)
            model = build_moda_model(CFG, groups, seed=123)
            load_distributed(tmp_path / "ckpt", model)
            out = model(tokens)
            return out.data

        res4 = run_spmd(lambda c: forward_program(c, 4), 4, timeout=300)
        res2 = run_spmd(lambda c: forward_program(c, 2), 2, timeout=300)
        assert np.allclose(res4.returns[0], res2.returns[0], atol=1e-5)


def _train_save_run(tmp_path, world, ep, steps=2, seed=11):
    """Train a few MoDa steps so Adam accumulates real m/v state, save
    params + optimizer, and return each rank's global-named state."""

    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)
        optimizer = Adam(model.parameters(), lr=1e-3)
        trainer = MoDaTrainer(model, optimizer, groups)
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=seed)
        loader = ShardedLoader(corpus, 2, 8, dp_rank=comm.rank, dp_size=comm.size)
        for step in range(steps):
            trainer.train_step(loader.get_batch(step))
        save_distributed(tmp_path / "ckpt", model, groups, step=steps, optimizer=optimizer)
        return named_optimizer_state(model, optimizer)

    return run_spmd(program, world, timeout=300)


def _load_optimizer_run(tmp_path, world, ep, seed=77):
    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)  # different init
        optimizer = Adam(model.parameters(), lr=1e-3)
        meta = load_distributed(tmp_path / "ckpt", model, optimizer=optimizer)
        return meta, named_optimizer_state(model, optimizer)

    return run_spmd(program, world, timeout=300)


def _union(states):
    merged = {}
    for state in states:
        for key, value in state.items():
            if key == "step_count":
                merged[key] = value
            else:
                merged.setdefault(key, value)
    return merged


class TestOptimizerStateReshard:
    """Adam m/v/master state rides the same global-name reshard as params."""

    @pytest.mark.parametrize("load_world,load_ep", [(4, 4), (2, 2), (1, 1)])
    def test_state_bitwise_across_layouts(self, tmp_path, load_world, load_ep):
        saved = _train_save_run(tmp_path, world=4, ep=4)
        ref = _union(saved.returns)
        loaded = _load_optimizer_run(tmp_path, world=load_world, ep=load_ep)
        got = _union(state for _, state in loaded.returns)
        assert set(got) == set(ref)
        assert got["step_count"] == ref["step_count"] == 2
        for key in ref:
            if key == "step_count":
                continue
            assert np.array_equal(got[key], ref[key]), key

    def test_meta_records_manifest(self, tmp_path):
        _train_save_run(tmp_path, world=4, ep=2)
        import json

        meta = json.loads((tmp_path / "ckpt" / "meta.json").read_text())
        assert meta["format"] == 2
        assert "dense.npz" in meta["files"]
        assert "optim_dense.npz" in meta["files"]
        assert "optim_experts_0of2.npz" in meta["files"]

    def test_load_without_optimizer_files(self, tmp_path):
        _save_run(tmp_path, world=2, ep=2)  # param-only snapshot

        def program(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(CFG, groups, seed=0)
            optimizer = Adam(model.parameters(), lr=1e-3)
            load_distributed(tmp_path / "ckpt", model, optimizer=optimizer)

        with pytest.raises(CheckpointError, match="optim"):
            run_spmd(program, 2, timeout=60)


class TestElasticResumeTrajectory:
    """Satellite acceptance: save at ep=4, restore at ep=2 and ep=1, and
    the continued loss trajectory reproduces an undisturbed ep=4 run
    exactly (fold-carry elastic accumulation + resharded optimizer)."""

    def _segment(self, ckpt_dir, world, ep, total, resume=None, every=3):
        from repro.parallel import TrainingRunConfig
        from repro.resilience import SegmentProgress, SegmentSpec, run_elastic_segment

        run_cfg = TrainingRunConfig(
            model=CFG, world_size=world, ep_size=ep, num_steps=total,
            batch_size=2, seq_len=8, seed=0, model_compute_time=False,
        )
        spec = SegmentSpec(
            run_cfg=run_cfg, logical_world=4, logical_ep=4, total_steps=total,
            checkpoint_every=every, checkpoint_dir=str(ckpt_dir),
            resume_dir=resume, progress=SegmentProgress(), machine=None,
        )
        return run_spmd(run_elastic_segment, world, args=(spec,), timeout=300).returns[0]

    @pytest.mark.parametrize("world,ep", [(2, 2), (1, 1)])
    def test_resume_matches_undisturbed(self, tmp_path, world, ep):
        ref = self._segment(tmp_path / "full", 4, 4, total=6)
        res = self._segment(
            tmp_path / "resumed", world, ep, total=6,
            resume=str(tmp_path / "full" / "step-000003"),
        )
        assert res["start"] == 3
        # Exact equality: forward is row-independent under resharding, and
        # the fold-carry accumulation reproduces the full-world reductions.
        assert res["losses"] == ref["losses"][3:]


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        def program(comm):
            groups = build_groups(comm, 1)
            model = build_moda_model(CFG, groups, seed=0)
            load_distributed(tmp_path / "nope", model)

        with pytest.raises(CheckpointError):
            run_spmd(program, 1, timeout=60)

    def test_missing_expert_shard(self, tmp_path):
        _save_run(tmp_path, world=2, ep=2)
        # Remove one expert shard: loading must fail with a clear error.
        (tmp_path / "ckpt" / "experts_1of2.npz").unlink()

        def program(comm):
            groups = build_groups(comm, 1)
            model = build_moda_model(CFG, groups, seed=0)
            load_distributed(tmp_path / "ckpt", model)

        with pytest.raises(CheckpointError, match="not found in any shard"):
            run_spmd(program, 1, timeout=60)
