"""Distributed checkpointing: sharded save, layout-independent restore."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.models import tiny_config
from repro.parallel import (
    build_groups,
    build_moda_model,
    dense_state,
    global_expert_state,
    load_distributed,
    save_distributed,
)
from repro.simmpi import run_spmd

CFG = tiny_config(num_experts=4)


def _save_run(tmp_path, world, ep, seed=21, perturb=False):
    """Train-free save: build, optionally perturb deterministically, save."""

    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)
        if perturb:
            for name, p in model.named_parameters():
                p.data = p.data + 0.001  # recognizable change
        save_distributed(tmp_path / "ckpt", model, groups, step=7)
        return global_expert_state(model), dense_state(model)

    return run_spmd(program, world, timeout=300)


def _load_run(tmp_path, world, ep, seed=99):
    def program(comm):
        groups = build_groups(comm, ep)
        model = build_moda_model(CFG, groups, seed=seed)  # different init
        meta = load_distributed(tmp_path / "ckpt", model)
        return meta, global_expert_state(model), dense_state(model)

    return run_spmd(program, world, timeout=300)


class TestSaveLoadSameLayout:
    def test_roundtrip(self, tmp_path):
        saved = _save_run(tmp_path, world=4, ep=2)
        loaded = _load_run(tmp_path, world=4, ep=2)
        meta = loaded.returns[0][0]
        assert meta["step"] == 7
        assert meta["ep_size"] == 2
        # Dense params restored identically on every rank.
        ref_dense = saved.returns[0][1]
        for _, _, dense in loaded.returns:
            for k, v in dense.items():
                assert np.array_equal(v, ref_dense[k]), k

    def test_expert_shards_restored(self, tmp_path):
        saved = _save_run(tmp_path, world=4, ep=2)
        loaded = _load_run(tmp_path, world=4, ep=2)
        ref_experts = {}
        for experts, _ in saved.returns:
            ref_experts.update(experts)
        got_experts = {}
        for _, experts, _ in loaded.returns:
            got_experts.update(experts)
        assert set(got_experts) == set(ref_experts)
        for k in ref_experts:
            assert np.array_equal(got_experts[k], ref_experts[k]), k

    def test_checkpoint_files_layout(self, tmp_path):
        _save_run(tmp_path, world=4, ep=2)
        d = tmp_path / "ckpt"
        assert (d / "dense.npz").exists()
        assert (d / "meta.json").exists()
        assert (d / "experts_0of2.npz").exists()
        assert (d / "experts_1of2.npz").exists()


class TestResharding:
    @pytest.mark.parametrize("save_ep,load_world,load_ep", [
        (4, 2, 2),   # shrink EP width
        (2, 4, 4),   # grow EP width
        (4, 1, 1),   # collapse to a single process
    ])
    def test_reshard(self, tmp_path, save_ep, load_world, load_ep):
        saved = _save_run(tmp_path, world=save_ep, ep=save_ep)
        ref_experts = {}
        for experts, _ in saved.returns:
            ref_experts.update(experts)
        ref_dense = saved.returns[0][1]

        loaded = _load_run(tmp_path, world=load_world, ep=load_ep)
        got_experts = {}
        for _, experts, dense in loaded.returns:
            got_experts.update(experts)
            for k, v in dense.items():
                assert np.array_equal(v, ref_dense[k]), k
        assert set(got_experts) == set(ref_experts)
        for k in ref_experts:
            assert np.array_equal(got_experts[k], ref_experts[k]), k

    def test_forward_identical_after_reshard(self, tmp_path):
        """The restored model computes the same function under a new layout."""
        _save_run(tmp_path, world=4, ep=4, perturb=True)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, CFG.vocab_size, size=(2, 8))

        def forward_program(comm, ep):
            groups = build_groups(comm, ep)
            model = build_moda_model(CFG, groups, seed=123)
            load_distributed(tmp_path / "ckpt", model)
            out = model(tokens)
            return out.data

        res4 = run_spmd(lambda c: forward_program(c, 4), 4, timeout=300)
        res2 = run_spmd(lambda c: forward_program(c, 2), 2, timeout=300)
        assert np.allclose(res4.returns[0], res2.returns[0], atol=1e-5)


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        def program(comm):
            groups = build_groups(comm, 1)
            model = build_moda_model(CFG, groups, seed=0)
            load_distributed(tmp_path / "nope", model)

        with pytest.raises(CheckpointError):
            run_spmd(program, 1, timeout=60)

    def test_missing_expert_shard(self, tmp_path):
        _save_run(tmp_path, world=2, ep=2)
        # Remove one expert shard: loading must fail with a clear error.
        (tmp_path / "ckpt" / "experts_1of2.npz").unlink()

        def program(comm):
            groups = build_groups(comm, 1)
            model = build_moda_model(CFG, groups, seed=0)
            load_distributed(tmp_path / "ckpt", model)

        with pytest.raises(CheckpointError, match="not found in any shard"):
            run_spmd(program, 1, timeout=60)
