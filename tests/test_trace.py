"""Virtual-time tracing of SPMD runs."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network import flat_network
from repro.simmpi import (
    RunContext,
    TraceEvent,
    run_spmd,
    to_chrome_trace,
    write_chrome_trace,
)


def program(comm):
    comm.advance(0.5)
    comm.allreduce(np.ones(1000, dtype=np.float32))
    if comm.rank == 0:
        comm.send(b"payload!", dest=1)
    elif comm.rank == 1:
        comm.recv(source=0)
    comm.barrier()


class TestTracing:
    def test_disabled_by_default(self):
        res = run_spmd(program, 2, network=flat_network(2))
        assert res.trace is None

    def test_events_recorded(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        ops = {e.op for e in res.trace}
        assert {"compute", "allreduce", "send", "recv", "barrier"} <= ops

    def test_events_per_rank(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        ranks = {e.rank for e in res.trace}
        assert ranks == {0, 1}
        # Each rank: compute + allreduce + barrier (+ send or recv).
        for r in (0, 1):
            assert len([e for e in res.trace if e.rank == r]) == 4

    def test_intervals_well_formed(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        for e in res.trace:
            assert e.t_end >= e.t_start >= 0.0
            assert e.t_end <= res.simulated_time + 1e-12

    def test_compute_interval_duration(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        computes = [e for e in res.trace if e.op == "compute"]
        assert all(e.duration == pytest.approx(0.5) for e in computes)

    def test_send_bytes_recorded(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        send = next(e for e in res.trace if e.op == "send")
        assert send.nbytes == 8

    def test_per_rank_events_are_ordered(self):
        res = run_spmd(program, 2, network=flat_network(2), trace=True)
        for r in (0, 1):
            mine = [e for e in res.trace if e.rank == r]
            starts = [e.t_start for e in mine]
            assert starts == sorted(starts)

    def test_works_without_network(self):
        res = run_spmd(program, 2, trace=True)
        # All events exist, timings are zero-duration except compute.
        assert any(e.op == "allreduce" for e in res.trace)


class TestChromeExport:
    def _events(self):
        return [
            TraceEvent(rank=0, op="allreduce", t_start=0.0, t_end=1e-3, nbytes=4096),
            TraceEvent(rank=1, op="compute", t_start=1e-3, t_end=2e-3),
        ]

    def test_records_shape(self):
        records = to_chrome_trace(self._events())
        assert len(records) == 2
        first = records[0]
        assert first["ph"] == "X"
        assert first["name"] == "allreduce"
        assert first["tid"] == 0
        assert first["ts"] == pytest.approx(0.0)
        assert first["dur"] == pytest.approx(1000.0)  # 1 ms -> 1000 us
        assert first["args"]["nbytes"] == 4096

    def test_zero_duration_clamped(self):
        records = to_chrome_trace(
            [TraceEvent(rank=0, op="barrier", t_start=1.0, t_end=1.0)]
        )
        assert records[0]["dur"] > 0

    def test_write_file(self, tmp_path):
        path = write_chrome_trace(self._events(), tmp_path / "trace.json")
        blob = json.loads(path.read_text())
        assert "traceEvents" in blob
        assert len(blob["traceEvents"]) == 2

    def test_empty_event_list(self, tmp_path):
        """Zero events is a valid (if boring) trace, not an error."""
        assert to_chrome_trace([]) == []
        path = write_chrome_trace([], tmp_path / "empty.json")
        blob = json.loads(path.read_text())
        assert blob["traceEvents"] == []

    def test_context_guard_when_untraced(self, tmp_path):
        """An untraced context refuses to export and names the fix."""
        ctx = RunContext(trace=False)
        with pytest.raises(ConfigError, match="trace=True"):
            ctx.write_chrome_trace(tmp_path / "never.json")

    def test_absorb_shifts_trace_clock(self):
        """Session aggregation lands absorbed events on the session
        timeline: every timestamp shifted by clock_offset, bytes kept."""
        session = RunContext(trace=True)
        launch = RunContext(trace=True)
        launch.trace_events.extend(self._events())
        session.absorb(launch, clock_offset=10.0)
        assert [e.t_start for e in session.trace_events] == [10.0, 10.0 + 1e-3]
        assert [e.t_end for e in session.trace_events] == [10.0 + 1e-3, 10.0 + 2e-3]
        assert session.trace_events[0].nbytes == 4096
        assert session.trace_events[0].op == "allreduce"

    def test_absorb_into_untraced_session_drops_events(self):
        """An untraced session stays untraced; absorb must not crash."""
        session = RunContext(trace=False)
        launch = RunContext(trace=True)
        launch.trace_events.extend(self._events())
        session.absorb(launch, clock_offset=5.0)
        assert session.trace_events is None

    def test_end_to_end_trace_of_training(self, tmp_path):
        """A full distributed training step produces a coherent trace."""
        from repro.data import ShardedLoader, SyntheticCorpus
        from repro.models import tiny_config
        from repro.parallel import MoDaTrainer, build_groups, build_moda_model
        from repro.train import Adam

        cfg = tiny_config(num_experts=4)

        def train(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(cfg, groups, seed=1)
            trainer = MoDaTrainer(model, Adam(model.parameters(), lr=1e-3), groups)
            corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, seed=0)
            loader = ShardedLoader(corpus, 2, 8, dp_rank=comm.rank, dp_size=comm.size)
            trainer.train_step(loader.get_batch(0))

        res = run_spmd(train, 4, network=flat_network(4), trace=True, timeout=300)
        assert len(res.trace) > 20
        ops = {e.op for e in res.trace}
        assert "alltoall" in ops and "allreduce" in ops
        path = write_chrome_trace(res.trace, tmp_path / "step.json")
        assert path.exists()
