"""Unified telemetry subsystem: registry, profilers, flight recorder, report.

The load-bearing claims tested here:

* the metric registry is get-or-create by (name, labels), thread-safe
  under concurrent rank threads (increments sum exactly), and exports in
  deterministic sorted order regardless of creation order;
* a run launched without ``observe=True`` pays a shared no-op registry —
  identical loss trajectories to an observed run, and the no-op emission
  path costs microseconds, not milliseconds;
* the comm profiler prices traced collectives through the network cost
  model (utilization = model / recorded) and degrades to TrafficStats
  totals when untraced;
* the always-on flight recorder is bounded, and every ferried failure —
  scripted fault, deadlock, overflow — carries ``exc.flight_dump`` with
  each rank's recent operations;
* the markdown run report is byte-stable across same-seed runs.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeadlockError,
    FaultInjected,
    OverflowDetected,
)
from repro.models import tiny_config
from repro.network import flat_network, sunway_network
from repro.obs import (
    NULL_REGISTRY,
    CommProfile,
    FlightRecorder,
    MetricRegistry,
    RouterTelemetry,
    build_report,
    collect_run_records,
    generate_run_report,
    profile_comm,
    registry_records,
    to_prometheus,
    write_enriched_trace,
)
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.simmpi import FaultPlan, RunContext, run_spmd

CFG = tiny_config(num_experts=4)


def _observed_run(observe=True, trace=False, seed=0):
    return run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=4, ep_size=2, num_steps=3,
            batch_size=2, seq_len=8, seed=seed, trace=trace, observe=observe,
        ),
        network=sunway_network(4, supernode_size=2),
    )


# ---------------------------------------------------------------------- #
# Metric registry
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricRegistry()
        a = reg.counter("steps", strategy="moda")
        b = reg.counter("steps", strategy="moda")
        assert a is b
        # Label order at the call site is irrelevant.
        c = reg.gauge("loss", a=1, b=2)
        d = reg.gauge("loss", b=2, a=1)
        assert c is d
        assert len(reg) == 2

    def test_kind_clash_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError, match="already registered as counter"):
            reg.gauge("x")

    def test_counter_monotonic(self):
        reg = MetricRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            MetricRegistry().counter("")

    def test_gauge_and_histogram(self):
        reg = MetricRegistry()
        g = reg.gauge("world")
        g.set(4)
        g.add(-2)
        assert g.value == 2.0
        h = reg.histogram("lat")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        assert h.count == 4 and h.sum == 10.0
        assert h.percentile(50) == 2.5
        s = h.summary()
        assert s["mean"] == 2.5 and s["max"] == 4.0
        # Empty histograms summarize to zeros, never raise.
        empty = reg.histogram("idle")
        assert empty.percentile(95) == 0.0
        assert empty.summary()["count"] == 0

    def test_snapshot_deterministic_order(self):
        # Insertion order scrambled; export order must be sorted.
        reg = MetricRegistry()
        reg.counter("zz")
        reg.counter("aa", op="b")
        reg.counter("aa", op="a")
        names = [(r["metric"], r["labels"]) for r in reg.snapshot()]
        assert names == [("aa", "op=a"), ("aa", "op=b"), ("zz", "")]

    def test_merge_semantics(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        a.merge(b)
        assert a.counter("n").value == 5.0       # counters add
        assert a.gauge("g").value == 9.0         # absorbed launch wins
        assert a.histogram("h").count == 2       # samples concatenate
        a.merge(NULL_REGISTRY)                   # disabled merge is a no-op
        assert a.counter("n").value == 5.0

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        inst = NULL_REGISTRY.counter("anything", rank=3)
        assert inst is NULL_REGISTRY.gauge("other")
        inst.inc()
        inst.set(5)
        inst.observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == []
        assert to_prometheus(NULL_REGISTRY) == ""


class TestRegistryConcurrency:
    def test_concurrent_rank_threads_sum_exactly(self):
        reg = MetricRegistry()
        ranks, per_rank = 8, 500

        def worker(rank):
            for _ in range(per_rank):
                reg.counter("train_steps").inc()
                reg.counter("rank_steps", rank=rank % 2).inc()
                reg.histogram("loss").observe(float(rank))

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(ranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("train_steps").value == ranks * per_rank
        assert (
            reg.counter("rank_steps", rank=0).value
            + reg.counter("rank_steps", rank=1).value
            == ranks * per_rank
        )
        assert reg.histogram("loss").count == ranks * per_rank

    def test_concurrent_creation_exports_deterministically(self):
        # Threads race to create differently-labeled series; the export
        # must come out in one sorted order regardless of who won.
        reg = MetricRegistry()

        def worker(rank):
            reg.counter("ops", rank=rank).inc(rank)

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        labels = [r["labels"] for r in reg.snapshot()]
        assert labels == sorted(labels)
        assert to_prometheus(reg) == to_prometheus(reg)


# ---------------------------------------------------------------------- #
# Exporters
# ---------------------------------------------------------------------- #


class TestExporters:
    def test_prometheus_exposition(self):
        reg = MetricRegistry()
        reg.counter("comm_bytes", op="alltoall").inc(100)
        reg.gauge("train_loss", strategy="moda").set(2.5)
        reg.histogram("lat").observe_many([1.0, 3.0])
        text = to_prometheus(reg)
        assert "# TYPE repro_comm_bytes counter" in text
        assert 'repro_comm_bytes{op="alltoall"} 100' in text
        assert 'repro_train_loss{strategy="moda"} 2.5' in text
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{quantile="0.5"} 2' in text
        assert "repro_lat_count 2" in text
        assert "repro_lat_sum 4" in text

    def test_prometheus_sanitizes_and_escapes(self):
        reg = MetricRegistry()
        reg.counter("bad-name.x", tag='va"l').inc()
        text = to_prometheus(reg, namespace="")
        assert "bad_name_x" in text
        assert 'tag="va\\"l"' in text

    def test_registry_records_tagged(self):
        reg = MetricRegistry()
        reg.counter("n").inc()
        recs = registry_records(reg)
        assert recs[0]["record"] == "metric"
        assert recs[0]["metric"] == "n"

    def test_enriched_trace(self, tmp_path):
        res = run_spmd(
            lambda comm: comm.barrier(), 2, network=flat_network(2), trace=True
        )
        res.context.record_event("restart", t=1.0, launch=2)
        path = write_enriched_trace(res.context, tmp_path / "t.json")
        blob = json.loads(path.read_text())
        names = {r.get("name") for r in blob["traceEvents"]}
        assert "process_name" in names and "thread_name" in names
        instants = [r for r in blob["traceEvents"] if r["ph"] == "i"]
        assert instants[0]["name"] == "restart"
        assert instants[0]["args"]["launch"] == 2

    def test_enriched_trace_guard(self, tmp_path):
        with pytest.raises(ConfigError, match="trace=True"):
            write_enriched_trace(RunContext(trace=False), tmp_path / "no.json")


# ---------------------------------------------------------------------- #
# Comm profiler
# ---------------------------------------------------------------------- #


def _comm_program(comm):
    comm.advance(1e-4)
    comm.allreduce(np.ones(256, dtype=np.float32))
    comm.allreduce(np.ones(256, dtype=np.float32))
    if comm.rank == 0:
        comm.send(b"x" * 64, dest=1)
    elif comm.rank == 1:
        comm.recv(source=0)
    comm.barrier()


class TestCommProfiler:
    def test_traced_records_per_op_rank(self):
        net = flat_network(2)
        res = run_spmd(_comm_program, 2, network=net, trace=True)
        prof = profile_comm(res.context, network=net)
        assert prof.traced
        allreduce = [r for r in prof if r.op == "allreduce"]
        assert {r.rank for r in allreduce} == {0, 1}
        for r in allreduce:
            assert r.calls == 2
            assert r.nbytes == 2 * 256 * 4
            assert r.seconds > 0
            assert r.model_seconds is not None
            # Ranks arrive together here, so the recorded time is the
            # modelled time: utilization == 1.
            assert r.utilization == pytest.approx(1.0, rel=1e-6)

    def test_per_op_collapse_and_table(self):
        net = flat_network(2)
        res = run_spmd(_comm_program, 2, network=net, trace=True)
        prof = profile_comm(res.context, network=net)
        per_op = {r.op: r for r in prof.per_op()}
        assert per_op["allreduce"].rank is None
        assert per_op["allreduce"].nbytes == 2 * 2 * 256 * 4  # both ranks
        table = prof.format_table()
        assert "allreduce" in table and "util" in table
        assert table == prof.format_table()  # deterministic

    def test_untraced_falls_back_to_stats(self):
        res = run_spmd(_comm_program, 2, network=flat_network(2))
        prof = profile_comm(res.context)
        assert not prof.traced
        ops = {r.op for r in prof}
        assert "allreduce" in ops and "p2p" in ops
        rec = next(r for r in prof if r.op == "allreduce")
        assert rec.rank is None and rec.calls == 2
        assert rec.utilization is None
        assert rec.seconds == 0.0 and rec.bandwidth == 0.0

    def test_records_are_jsonl_safe(self):
        res = run_spmd(_comm_program, 2, network=flat_network(2), trace=True)
        for rec in profile_comm(res.context).records():
            json.dumps(rec)
            assert rec["model_seconds"] == -1.0  # unpriced without a network

    def test_emit_into_registry(self):
        net = flat_network(2)
        res = run_spmd(_comm_program, 2, network=net, trace=True)
        reg = MetricRegistry()
        profile_comm(res.context, network=net).emit(reg)
        assert reg.counter("comm_calls", op="allreduce").value == 2
        assert reg.gauge("comm_utilization", op="allreduce").value > 0


# ---------------------------------------------------------------------- #
# Router telemetry
# ---------------------------------------------------------------------- #


class TestRouterTelemetry:
    def test_record_and_summarize(self):
        tel = RouterTelemetry()
        tel.record(0, 0, [10, 10, 10, 10])
        tel.record(1, 0, [40, 0, 0, 0], drop_fraction=0.25)
        tel.record(0, 1, [5, 5, 5, 5])
        assert len(tel) == 3
        assert tel.layers() == [0, 1]
        assert tel.load_matrix(0).shape == (2, 4)
        summary = {r["layer"]: r for r in tel.layer_summary()}
        assert summary[0]["steps"] == 2
        assert summary[0]["max_imbalance"] == pytest.approx(4.0)
        assert summary[0]["mean_drop_fraction"] == pytest.approx(0.125)
        assert summary[1]["mean_imbalance"] == pytest.approx(1.0)

    def test_load_matrix_empty_layer(self):
        with pytest.raises(ConfigError, match="no router samples"):
            RouterTelemetry().load_matrix(0)

    def test_heatmap_deterministic(self):
        tel = RouterTelemetry()
        tel.record(0, 0, [0, 1, 2, 4])
        art = tel.heatmap(0)
        assert art.startswith("step    0 |")
        assert art.endswith("|")
        assert art == tel.heatmap(0)
        # Peak expert renders as the hottest ramp character.
        assert art.rstrip("|")[-1] == "@"

    def test_emit_and_absorb(self):
        tel = RouterTelemetry()
        tel.record(0, 0, [1, 3])
        reg = MetricRegistry()
        tel.emit(reg)
        assert reg.gauge("router_imbalance", layer=0).value == pytest.approx(1.5)
        assert reg.counter("router_expert_tokens", layer=0, expert=1).value == 3.0
        other = RouterTelemetry()
        other.record(1, 0, [2, 2])
        tel.absorb(other)
        assert len(tel) == 2 and tel.load_matrix(0).shape == (2, 2)


# ---------------------------------------------------------------------- #
# Flight recorder
# ---------------------------------------------------------------------- #


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(limit=4)
        for i in range(10):
            rec.record(0, f"op{i}", float(i), float(i) + 0.5)
        dump = rec.dump()
        assert dump["limit"] == 4
        assert [e["op"] for e in dump["ranks"][0]] == ["op6", "op7", "op8", "op9"]
        assert dump["last_op"][0] == "op9"

    def test_limit_validated(self):
        with pytest.raises(ConfigError):
            FlightRecorder(limit=0)

    def test_notes_and_phases_in_dump(self):
        rec = FlightRecorder(limit=4)
        rec.note("failure", t=2.0, launch=1)
        dump = rec.dump(phases={"forward": 1.5})
        assert dump["notes"][0]["kind"] == "failure"
        assert dump["phases"] == {"forward": 1.5}

    def test_dump_to_is_sorted_json(self, tmp_path):
        rec = FlightRecorder(limit=2)
        rec.record(1, "send", 0.0, 0.1, nbytes=8)
        path = rec.dump_to(tmp_path / "flight.json")
        blob = json.loads(path.read_text())
        assert blob["ranks"]["1"][0]["op"] == "send"
        assert path.read_text() == json.dumps(blob, sort_keys=True, indent=1)

    def test_ingest_shifts_clock(self):
        a, b = FlightRecorder(limit=4), FlightRecorder(limit=4)
        b.record(0, "barrier", 1.0, 2.0)
        b.note("failure", t=2.0)
        a.ingest(b.dump(), clock_offset=10.0)
        dump = a.dump()
        assert dump["ranks"][0][0]["t_start"] == 11.0
        assert dump["notes"][0]["t"] == 12.0


class TestFlightDumpOnFailure:
    """Fault, deadlock, and overflow all ferry through run_spmd's single
    error path, so each carries the same post-mortem evidence."""

    def test_scripted_fault_kill_carries_dump(self):
        plan = FaultPlan().kill_rank(1, at_op=2)

        def program(comm):
            comm.barrier()            # op 0
            comm.allreduce(np.ones(8))  # op 1
            comm.barrier()            # op 2: rank 1 dies here
            comm.barrier()

        with pytest.raises(FaultInjected) as ei:
            run_spmd(program, 2, network=flat_network(2), faults=plan)
        dump = ei.value.flight_dump
        assert dump["limit"] >= 1
        # Rank 0 completed its first collectives before the world died.
        ops0 = [e["op"] for e in dump["ranks"][0]]
        assert "barrier" in ops0 and "allreduce" in ops0
        assert set(dump["last_op"]) <= {0, 1}
        for events in dump["ranks"].values():
            for e in events:
                assert e["t_end"] >= e["t_start"] >= 0.0

    def test_deadlock_carries_dump(self):
        def program(comm):
            comm.allreduce(np.ones(4))
            if comm.rank == 0:
                comm.recv(source=1)  # nobody sends: wedge

        with pytest.raises(DeadlockError) as ei:
            run_spmd(program, 2, network=flat_network(2), timeout=1.0)
        dump = ei.value.flight_dump
        # The completed allreduce is on record for both ranks.
        assert dump["last_op"][1] == "allreduce"
        assert "allreduce" in [e["op"] for e in dump["ranks"][0]]

    def test_overflow_carries_dump(self):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                raise OverflowDetected("kv cache overflow")
            comm.barrier()

        with pytest.raises(OverflowDetected) as ei:
            run_spmd(program, 2, network=flat_network(2), timeout=1.0)
        assert ei.value.flight_dump["last_op"][1] == "barrier"

    def test_supervisor_failure_event_references_flight(self, tmp_path):
        from repro.resilience import ElasticRunConfig, Supervisor
        from repro.simmpi import FaultModel

        cfg = ElasticRunConfig(
            model=CFG, world_size=4, ep_size=2, total_steps=4,
            checkpoint_every=2, checkpoint_dir=tmp_path / "ckpt",
            batch_size=2, seq_len=8, seed=0, max_restarts=8,
        )
        result = Supervisor(
            cfg, faults=FaultModel(seed=0, mtbf=1e-3, dead_nodes=(3,))
        ).run()
        failures = result.context.events_of("failure")
        assert failures, "the dead node must produce at least one failure"
        assert all("flight_events" in f and "flight_last_op" in f
                   for f in failures)
        # Faults past the first collective leave recorded ops behind.
        with_evidence = [f for f in failures if f["flight_events"] > 0]
        assert with_evidence
        assert any(isinstance(f["flight_last_op"], str) for f in with_evidence)


# ---------------------------------------------------------------------- #
# Observe parity: no-op registry must not perturb the run
# ---------------------------------------------------------------------- #


class TestObserveParity:
    def test_loss_trajectories_identical(self):
        plain = _observed_run(observe=False)
        observed = _observed_run(observe=True)
        assert plain.losses == observed.losses
        assert plain.simulated_time == observed.simulated_time
        assert not plain.context.observing
        assert observed.context.observing
        assert observed.context.metrics.counter("train_steps", strategy="moda").value == 3.0
        assert len(observed.context.router) > 0

    def test_null_emission_is_cheap(self):
        # Sanity bound, not a benchmark: 10k no-op emissions must cost
        # microseconds each at worst, even on a loaded CI box.
        ctx = RunContext(observe=False)
        t0 = time.perf_counter()
        for _ in range(10_000):
            ctx.metrics.counter("train_steps", strategy="moda").inc()
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0, f"no-op emission too slow: {elapsed:.3f}s / 10k"


# ---------------------------------------------------------------------- #
# Run records + markdown report
# ---------------------------------------------------------------------- #


class TestRunReport:
    def test_collect_run_records_types(self):
        res = _observed_run(trace=True)
        records = collect_run_records(
            res.context, network=sunway_network(4, supernode_size=2)
        )
        kinds = {r["record"] for r in records}
        assert kinds == {"context", "comm", "router", "metric"}

    def test_report_sections_render(self):
        res = _observed_run(trace=True)
        records = collect_run_records(res.context)
        records += [{"step": s, "loss": loss} for s, loss in enumerate(res.losses)]
        text = build_report(records, title="T")
        for section in ("# T", "## Phase breakdown", "## Traffic",
                        "## Communication", "## Router", "## Metrics",
                        "## Training loss"):
            assert section in text
        assert "Expert-load heatmap" in text

    def test_report_byte_stable_across_same_seed_runs(self):
        texts = []
        for _ in range(2):
            res = _observed_run(trace=True, seed=7)
            records = collect_run_records(res.context)
            texts.append(build_report(records, title="Stable"))
        assert texts[0] == texts[1]

    def test_generate_run_report_roundtrip(self, tmp_path):
        from repro.train.metrics import MetricsLogger

        res = _observed_run()
        metrics = tmp_path / "run.jsonl"
        with MetricsLogger(metrics) as logger:
            for s, loss in enumerate(res.losses):
                logger.log({"step": s, "loss": loss})
            logger.log_events(collect_run_records(res.context))
        out = tmp_path / "report.md"
        text = generate_run_report(metrics, out_path=out)
        assert out.read_text() == text
        assert "## Router" in text and "## Training loss" in text

    def test_generate_run_report_wants_jsonl(self, tmp_path):
        with pytest.raises(ConfigError, match="jsonl"):
            generate_run_report(tmp_path / "metrics.csv")

    def test_empty_records_still_render(self):
        text = build_report([], title="Empty")
        assert text.startswith("# Empty")
        assert "0 records." in text


# ---------------------------------------------------------------------- #
# Context integration
# ---------------------------------------------------------------------- #


class TestContextIntegration:
    def test_absorb_merges_all_components(self):
        session = RunContext(observe=True)
        launch = RunContext(observe=True)
        launch.metrics.counter("n").inc(2)
        launch.router.record(0, 0, [1, 3])
        launch.flight.record(0, "barrier", 1.0, 2.0)
        session.absorb(launch, clock_offset=5.0)
        assert session.metrics.counter("n").value == 2.0
        assert len(session.router) == 1
        assert session.flight.dump()["ranks"][0][0]["t_start"] == 6.0

    def test_summary_reports_observability(self):
        ctx = RunContext(observe=True)
        ctx.metrics.counter("n").inc()
        s = ctx.summary()
        assert s["observing"] is True
        assert s["num_metric_series"] == 1
        assert s["num_router_samples"] == 0
        assert RunContext().summary()["observing"] is False

    def test_record_event_also_notes_flight(self):
        ctx = RunContext()
        ctx.record_event("failure", t=3.0, rank=1)
        notes = ctx.flight.dump()["notes"]
        assert notes[0]["kind"] == "failure" and notes[0]["rank"] == 1

    def test_serve_emits_into_registry(self):
        from repro.serve import ServeConfig, run_serving

        res = run_serving(ServeConfig(
            model=CFG, ep_size=2, num_requests=4, max_new_tokens=4,
            max_batch_size=4, observe=True, seed=0,
        ))
        reg = res.context.metrics
        assert reg.counter("serve_iterations").value > 0
        assert reg.counter("serve_decode_tokens").value == 16.0
        assert reg.histogram("serve_ttft_seconds").count == 4
        assert len(res.context.router) > 0

    def test_elastic_emits_into_session_registry(self, tmp_path):
        from repro.resilience import ElasticRunConfig, run_elastic_training

        res = run_elastic_training(ElasticRunConfig(
            model=CFG, world_size=4, ep_size=2, total_steps=4,
            checkpoint_every=2, checkpoint_dir=tmp_path / "ckpt",
            batch_size=2, seq_len=8, seed=0, observe=True,
        ))
        reg = res.context.metrics
        assert reg.counter("train_steps", strategy="elastic").value == 4.0
        assert reg.gauge("session_final_world_size").value == 4.0
        assert len(res.context.router) > 0
