"""Dispatch plans and capacity enforcement (token conservation invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.moe import (
    apply_capacity,
    build_dispatch,
    expert_capacity,
    experts_of_rank,
    load_balance_loss,
    load_stats,
    owner_of_expert,
    router_z_loss,
)
from repro.tensor import Tensor


class TestExpertCapacity:
    def test_uniform_fit(self):
        assert expert_capacity(64, 8, 1, 1.0) == 8

    def test_factor_scales(self):
        assert expert_capacity(64, 8, 1, 2.0) == 16

    def test_topk_scales(self):
        assert expert_capacity(64, 8, 2, 1.0) == 16

    def test_minimum_one(self):
        assert expert_capacity(1, 64, 1, 0.1) == 1

    def test_invalid(self):
        with pytest.raises(ConfigError):
            expert_capacity(10, 2, 1, 0.0)


class TestApplyCapacity:
    def test_no_drops_when_under_capacity(self):
        indices = np.array([[0], [1], [2], [3]])
        cap = apply_capacity(indices, 4, 1.0)
        assert cap.dropped == 0
        assert cap.keep_mask.all()

    def test_drops_overflow(self):
        indices = np.zeros((8, 1), dtype=np.int64)  # everyone wants expert 0
        cap = apply_capacity(indices, 4, 1.0)
        assert cap.capacity == 2
        assert cap.keep_mask.sum() == 2
        assert cap.dropped == 6
        assert cap.drop_fraction == pytest.approx(6 / 8)

    def test_batch_order_priority(self):
        indices = np.zeros((4, 1), dtype=np.int64)
        cap = apply_capacity(indices, 4, 1.0)
        assert cap.keep_mask[0, 0]  # earliest token wins

    def test_explicit_priority(self):
        indices = np.zeros((4, 1), dtype=np.int64)
        priority = np.array([0.0, 0.0, 5.0, 1.0])
        cap = apply_capacity(indices, 4, 1.0, priority=priority)
        assert cap.keep_mask[2, 0]  # highest priority kept

    def test_positions_within_capacity(self):
        indices = np.array([[0], [0], [1], [0]])
        cap = apply_capacity(indices, 2, 2.0)
        kept_positions = cap.positions[cap.keep_mask]
        assert kept_positions.max() < cap.capacity

    def test_bad_priority_shape(self):
        with pytest.raises(ConfigError):
            apply_capacity(np.zeros((3, 1), dtype=int), 2, 1.0, priority=np.zeros(2))

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.25, max_value=4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_kept_never_exceeds_capacity(self, n, e, factor):
        rng = np.random.default_rng(n * e)
        indices = rng.integers(0, e, size=(n, 1))
        cap = apply_capacity(indices, e, factor)
        for expert in range(e):
            kept_here = (indices[cap.keep_mask[:, 0], 0] == expert).sum()
            assert kept_here <= cap.capacity


class TestBuildDispatch:
    def test_sorted_by_expert(self):
        indices = np.array([[2], [0], [1], [0]])
        plan = build_dispatch(indices, 3)
        assert np.all(np.diff(plan.expert_idx) >= 0)

    def test_counts_and_offsets(self):
        indices = np.array([[2], [0], [1], [0]])
        plan = build_dispatch(indices, 3)
        assert plan.counts.tolist() == [2, 1, 1]
        assert plan.offsets.tolist() == [0, 2, 3, 4]
        assert plan.num_slots == 4

    def test_segment_slices(self):
        indices = np.array([[1], [0], [1]])
        plan = build_dispatch(indices, 2)
        assert plan.token_idx[plan.segment(0)].tolist() == [1]
        assert sorted(plan.token_idx[plan.segment(1)].tolist()) == [0, 2]

    def test_keep_mask_excludes(self):
        indices = np.array([[0], [0], [1]])
        keep = np.array([[True], [False], [True]])
        plan = build_dispatch(indices, 2, keep)
        assert plan.num_slots == 2
        assert 1 not in plan.token_idx

    def test_stable_within_expert(self):
        indices = np.array([[0], [0], [0]])
        plan = build_dispatch(indices, 1)
        assert plan.token_idx.tolist() == [0, 1, 2]

    def test_topk_slots_tracked(self):
        indices = np.array([[0, 1], [1, 0]])
        plan = build_dispatch(indices, 2)
        assert plan.num_slots == 4
        pairs = set(zip(plan.token_idx.tolist(), plan.slot_idx.tolist()))
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_rank_segments(self):
        indices = np.array([[0], [1], [2], [3]])
        plan = build_dispatch(indices, 4)
        segs = plan.rank_segments(experts_per_rank=2)
        assert len(segs) == 2
        assert segs[0] == slice(0, 2)
        assert segs[1] == slice(2, 4)

    def test_rank_segments_bad_divisor(self):
        plan = build_dispatch(np.array([[0]]), 3)
        with pytest.raises(ConfigError):
            plan.rank_segments(2)

    def test_out_of_range_expert(self):
        with pytest.raises(ConfigError):
            build_dispatch(np.array([[5]]), 3)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_token_conservation(self, n, e, k):
        """Every kept (token, slot) appears in the plan exactly once."""
        k = min(k, e)
        rng = np.random.default_rng(n + e + k)
        indices = rng.integers(0, e, size=(n, k))
        plan = build_dispatch(indices, e)
        assert plan.num_slots == n * k
        assert plan.counts.sum() == n * k
        recovered = sorted(zip(plan.token_idx.tolist(), plan.slot_idx.tolist()))
        assert recovered == [(t, s) for t in range(n) for s in range(k)]
        # Expert ids in the plan match the routing table.
        assert np.all(indices[plan.token_idx, plan.slot_idx] == plan.expert_idx)


class TestOwnership:
    def test_owner_blocked(self):
        assert owner_of_expert(0, 8, 4) == 0
        assert owner_of_expert(7, 8, 4) == 3

    def test_experts_of_rank(self):
        assert list(experts_of_rank(1, 8, 4)) == [2, 3]

    def test_roundtrip(self):
        for e in range(12):
            r = owner_of_expert(e, 12, 3)
            assert e in experts_of_rank(r, 12, 3)

    def test_bad_divisor(self):
        with pytest.raises(ConfigError):
            owner_of_expert(0, 7, 2)


class TestBalanceLosses:
    def test_uniform_routing_gives_one(self):
        n, e = 64, 8
        probs = Tensor(np.full((n, e), 1.0 / e), dtype="fp64")
        indices = np.arange(n).reshape(-1, 1) % e
        loss = load_balance_loss(probs, indices, e)
        assert loss.item() == pytest.approx(1.0)

    def test_collapsed_routing_gives_e(self):
        n, e = 64, 8
        probs = np.zeros((n, e))
        probs[:, 0] = 1.0
        loss = load_balance_loss(Tensor(probs, dtype="fp64"), np.zeros((n, 1), dtype=int), e)
        assert loss.item() == pytest.approx(e)

    def test_loss_differentiable(self):
        probs = Tensor(np.random.default_rng(0).dirichlet(np.ones(4), size=16), dtype="fp64")
        probs.requires_grad = True
        indices = np.random.default_rng(1).integers(0, 4, size=(16, 1))
        load_balance_loss(probs, indices, 4).backward()
        assert probs.grad is not None

    def test_z_loss_zero_logits(self):
        logits = Tensor(np.zeros((4, 8)), dtype="fp64")
        assert router_z_loss(logits).item() == pytest.approx(np.log(8) ** 2)

    def test_z_loss_penalizes_large_logits(self):
        small = router_z_loss(Tensor(np.zeros((4, 8)), dtype="fp64")).item()
        large = router_z_loss(Tensor(np.full((4, 8), 50.0), dtype="fp64")).item()
        assert large > small

    def test_empty_probs_rejected(self):
        with pytest.raises(ConfigError):
            load_balance_loss(Tensor(np.zeros((0, 4))), np.zeros((0, 1), dtype=int), 4)


class TestLoadStats:
    def test_uniform(self):
        s = load_stats(np.array([4, 4, 4, 4]))
        assert s.imbalance == 1.0
        assert s.cv == 0.0

    def test_skewed(self):
        s = load_stats(np.array([12, 2, 1, 1]))
        assert s.imbalance == pytest.approx(3.0)
        assert s.cv > 0

    def test_zero_loads(self):
        s = load_stats(np.zeros(4))
        assert s.imbalance == 1.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            load_stats(np.zeros((2, 2)))
