"""Activation recomputation: gradient identity and model integration."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.models import MLP, build_model, tiny_config
from repro.tensor import Tensor, checkpoint, gradcheck, no_grad
from repro.tensor import ops as T


RNG = np.random.default_rng(3)


def t64(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True, dtype="fp64")


class TestCheckpointOp:
    def test_forward_value_identical(self):
        x = t64((4, 5))
        plain = T.tanh(x * 2.0)
        ckpt = checkpoint(lambda v: T.tanh(v * 2.0), x)
        assert np.array_equal(plain.data, ckpt.data)

    def test_gradient_identical_to_plain(self):
        def fn(v):
            return T.tanh(v @ v.transpose()) * 3.0

        x1 = t64((4, 4))
        fn(x1).sum().backward()
        x2 = Tensor(x1.data.copy(), requires_grad=True, dtype="fp64")
        checkpoint(fn, x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad)

    def test_gradcheck_through_checkpoint(self):
        gradcheck(lambda ins: checkpoint(lambda v: T.exp(T.tanh(v)), ins[0]), [t64((3, 3))])

    def test_multiple_inputs(self):
        def fn(a, b):
            return T.tanh(a @ b)

        a1, b1 = t64((2, 3)), t64((3, 2))
        fn(a1, b1).sum().backward()
        a2 = Tensor(a1.data.copy(), requires_grad=True, dtype="fp64")
        b2 = Tensor(b1.data.copy(), requires_grad=True, dtype="fp64")
        checkpoint(fn, a2, b2).sum().backward()
        assert np.allclose(a1.grad, a2.grad)
        assert np.allclose(b1.grad, b2.grad)

    def test_parameter_gradients_accumulate(self):
        """fn closing over module parameters must still train them."""
        mlp = MLP(4, 8, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(5, 4)).astype(np.float32), requires_grad=True)
        checkpoint(mlp, x).sum().backward()
        assert mlp.fc_in.weight.grad is not None
        assert mlp.fc_out.weight.grad is not None
        assert x.grad is not None

    def test_param_grads_match_plain(self):
        mlp_a = MLP(4, 8, np.random.default_rng(1))
        mlp_b = MLP(4, 8, np.random.default_rng(1))
        x = RNG.normal(size=(5, 4)).astype(np.float32)
        mlp_a(Tensor(x)).sum().backward()
        checkpoint(mlp_b, Tensor(x)).sum().backward()
        assert np.allclose(mlp_a.fc_in.weight.grad, mlp_b.fc_in.weight.grad, atol=1e-6)

    def test_intermediates_not_retained(self):
        """The checkpointed output has no internal graph, only the inputs."""
        x = t64((3,))
        out = checkpoint(lambda v: T.exp(T.tanh(v * 2.0)), x)
        assert out._parents == (x,)

    def test_under_no_grad_is_plain_forward(self):
        x = t64((3,))
        with no_grad():
            out = checkpoint(lambda v: v * 2.0, x)
        assert out._parents == ()

    def test_requires_tensor_inputs(self):
        with pytest.raises(ShapeError):
            checkpoint(lambda v: v)
        with pytest.raises(ShapeError):
            checkpoint(lambda v: v, np.zeros(3))  # type: ignore[arg-type]

    def test_fn_must_return_tensor(self):
        with pytest.raises(ShapeError):
            checkpoint(lambda v: v.data, t64((2,)))


class TestModelRecompute:
    def test_config_flag(self):
        cfg = tiny_config(recompute=True)
        model = build_model(cfg)
        assert all(b.recompute for b in model.blocks)

    def test_recompute_rejects_dropout(self):
        with pytest.raises(ConfigError):
            tiny_config(recompute=True, dropout=0.1)

    def test_loss_identical_with_and_without(self):
        cfg = tiny_config()
        tokens = RNG.integers(0, cfg.vocab_size, size=(2, 8))
        plain = build_model(cfg, seed=5)
        ckpt = build_model(tiny_config(recompute=True), seed=5)
        assert plain.loss(tokens, tokens).item() == pytest.approx(
            ckpt.loss(tokens, tokens).item(), abs=1e-6
        )

    def test_gradients_identical_with_and_without(self):
        cfg = tiny_config()
        tokens = RNG.integers(0, cfg.vocab_size, size=(2, 8))
        plain = build_model(cfg, seed=5)
        ckpt = build_model(tiny_config(recompute=True), seed=5)
        plain.loss(tokens, tokens).backward()
        ckpt.loss(tokens, tokens).backward()
        for (name, a), (_, b) in zip(plain.named_parameters(), ckpt.named_parameters()):
            if a.grad is None:
                assert b.grad is None, name
                continue
            assert np.allclose(a.grad, b.grad, atol=1e-5), name

    def test_training_converges_with_recompute(self):
        from repro.data import ShardedLoader, SyntheticCorpus
        from repro.train import Adam, Trainer

        cfg = tiny_config(recompute=True)
        model = build_model(cfg, seed=1)
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=3)
        loader = ShardedLoader(corpus, 8, 16)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3))
        hist = trainer.fit(loader, 30)
        assert hist[-1].loss < hist[0].loss

    def test_eval_mode_skips_checkpointing(self):
        """In eval there is no backward, so no need for the extra forward."""
        cfg = tiny_config(recompute=True)
        model = build_model(cfg, seed=2).eval()
        tokens = RNG.integers(0, cfg.vocab_size, size=(1, 4))
        out = model(tokens)  # must simply work
        assert out.shape == (1, 4, cfg.vocab_size)


class TestPerfRecomputeKnob:
    def test_memory_drops_with_recompute(self):
        from repro.models import bagualu_14_5t
        from repro.perf import ParallelPlan, node_memory

        cfg = bagualu_14_5t()
        base = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=8, seq_len=2048)
        ck = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=8, seq_len=2048,
                          recompute=True)
        assert node_memory(cfg, ck).activations < node_memory(cfg, base).activations / 3

    def test_compute_rises_with_recompute(self):
        from repro.hardware import sunway_machine
        from repro.models import bagualu_14_5t
        from repro.network import sunway_network
        from repro.perf import ParallelPlan, StepModel

        sm = StepModel(bagualu_14_5t(), sunway_machine(96000), sunway_network(96000))
        base = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=8, seq_len=2048)
        ck = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=8, seq_len=2048,
                          recompute=True)
        t0 = sm.step_breakdown(base).dense_compute
        t1 = sm.step_breakdown(ck).dense_compute
        assert t1 == pytest.approx(t0 * 4 / 3, rel=1e-6)
