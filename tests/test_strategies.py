"""Strategy registry: every parallel composition trains via one entry point.

Tier-1 guard for the strategy layer: each registered strategy (and the
TP x EP / PP x DP composites) runs two steps at world_size=4 with finite,
rank-agreed losses and nonzero traffic, the RunContext spine round-trips
stats/trace/phases, and the measured and analytic sides validate layouts
through the same shared helper.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import ParallelLayout
from repro.models import tiny_config
from repro.parallel import (
    TrainingRunConfig,
    available_strategies,
    get_strategy,
    run_distributed_training,
    strategy_for_layout,
)
from repro.perf import ParallelPlan

TINY = tiny_config()
#: TP and pipeline strategies want dense FFN blocks / enough layers.
TINY4 = tiny_config(n_layers=4, moe_every=2)

#: One world_size=4 launch recipe per registered strategy.
CASES = {
    "dp": dict(model=TINY),
    "ep": dict(model=TINY, ep_size=4),
    "moda": dict(model=TINY, ep_size=2),
    "tp": dict(model=TINY4, tp_size=2),
    "tp_ep": dict(model=TINY4, tp_size=2, ep_size=2),
    "zero": dict(model=TINY, ep_size=2, zero_shards=2),
    "pipeline": dict(model=TINY4, pp_size=4),
    "pp_dp": dict(model=TINY4, pp_size=2),
    "pp_moda": dict(model=TINY4, pp_size=2, ep_size=2),
}


class TestRegistry:
    def test_every_registered_strategy_is_exercised(self):
        assert sorted(CASES) == available_strategies()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            get_strategy("fsdp")

    def test_config_rejects_unknown_strategy(self):
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=TINY, world_size=4, strategy="fsdp")

    @pytest.mark.parametrize(
        ("layout_kw", "expected"),
        [
            (dict(), "dp"),
            (dict(ep_size=4), "ep"),
            (dict(ep_size=2), "moda"),
            (dict(tp_size=2), "tp"),
            (dict(tp_size=2, ep_size=2), "tp_ep"),
            (dict(zero_shards=4), "zero"),
            (dict(pp_size=4), "pipeline"),
            (dict(pp_size=2), "pp_dp"),
            (dict(pp_size=2, ep_size=2), "pp_moda"),
        ],
    )
    def test_auto_inference(self, layout_kw, expected):
        layout = ParallelLayout(world_size=4, **layout_kw)
        assert strategy_for_layout(layout).name == expected


@pytest.mark.parametrize("name", sorted(CASES))
def test_strategy_trains_two_steps(name):
    cfg = TrainingRunConfig(world_size=4, num_steps=2, **CASES[name])
    res = run_distributed_training(cfg)
    assert res.meta["strategy"] == name
    assert len(res.losses) == 2
    assert all(np.isfinite(v) for v in res.losses)
    assert res.traffic["total_bytes"] > 0
    # The RunContext spine fed the result: phases accumulated in virtual
    # seconds and the same stats object backs the traffic summary.
    assert res.context is not None
    assert res.phase_seconds and all(t >= 0 for t in res.phase_seconds.values())
    assert res.context.stats.summary() == res.traffic


class TestCompositeNumerics:
    def test_tp_matches_dp_on_same_data(self):
        """TP reshards FLOPs, never changes math: a 4-rank tp=2 run sees
        the same two data streams as a 2-rank dp run and must produce the
        identical loss trajectory."""
        dp = run_distributed_training(
            TrainingRunConfig(model=TINY4, world_size=2, num_steps=2)
        )
        tp = run_distributed_training(
            TrainingRunConfig(model=TINY4, world_size=4, tp_size=2, num_steps=2)
        )
        assert np.allclose(dp.losses, tp.losses, atol=1e-5)

    def test_zero_matches_plain_adam(self):
        """ZeRO shards optimizer state, not math: same trajectory as moda."""
        base = run_distributed_training(
            TrainingRunConfig(model=TINY, world_size=4, ep_size=2, num_steps=2)
        )
        zero = run_distributed_training(
            TrainingRunConfig(
                model=TINY, world_size=4, ep_size=2, zero_shards=2, num_steps=2
            )
        )
        assert np.allclose(base.losses, zero.losses, atol=1e-5)


class TestValidation:
    def test_tp_needs_dense_blocks(self):
        cfg = TrainingRunConfig(model=TINY, world_size=4, tp_size=2)
        with pytest.raises(ConfigError):
            run_distributed_training(cfg)

    def test_pipeline_microbatches_must_divide_batch(self):
        cfg = TrainingRunConfig(
            model=TINY4, world_size=4, pp_size=4, batch_size=4, num_microbatches=3
        )
        with pytest.raises(ConfigError):
            run_distributed_training(cfg)

    def test_zero_shards_bounded_by_world(self):
        cfg = TrainingRunConfig(model=TINY, world_size=4, zero_shards=8)
        with pytest.raises(ConfigError):
            run_distributed_training(cfg)

    def test_layout_rejects_bad_factorization(self):
        with pytest.raises(ConfigError):
            ParallelLayout(world_size=8, pp_size=3)
        with pytest.raises(ConfigError):
            ParallelLayout(world_size=8, tp_size=2, ep_size=8)

    def test_plan_and_config_share_the_layout_helper(self):
        plan = ParallelPlan(num_nodes=8, ep_size=4, zero_shards=2)
        cfg = TrainingRunConfig(
            model=TINY, world_size=8, ep_size=4, zero_shards=2
        )
        assert plan.layout == cfg.layout
        with pytest.raises(ConfigError):
            ParallelPlan(num_nodes=8, ep_size=3)
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=TINY, world_size=8, ep_size=3)


class TestRunContextRoundTrip:
    def test_trace_and_stats_round_trip(self, tmp_path):
        cfg = TrainingRunConfig(
            model=TINY, world_size=4, ep_size=2, num_steps=2, trace=True
        )
        res = run_distributed_training(cfg)
        assert res.context.tracing and res.trace
        out = tmp_path / "trace.json"
        res.context.write_chrome_trace(out)
        events = json.loads(out.read_text())["traceEvents"]
        assert len(events) == len(res.trace)
        assert {"forward", "backward", "grad_sync"} <= set(res.phase_seconds)
        summary = res.context.summary()
        assert summary["num_trace_events"] == len(res.trace)
        assert summary["traffic"]["total_bytes"] == res.traffic["total_bytes"]
        # Deterministically sorted keys: logged summaries diff cleanly.
        nested = res.traffic["collective_calls"]
        assert list(nested) == sorted(nested)

    def test_untraced_run_refuses_export(self, tmp_path):
        res = run_distributed_training(
            TrainingRunConfig(model=TINY, world_size=2, num_steps=1)
        )
        assert not res.context.tracing
        with pytest.raises(ConfigError):
            res.context.write_chrome_trace(tmp_path / "nope.json")
