"""Tests for repro.network: links and hierarchical topology."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, TopologyError
from repro.network import (
    Level,
    LinkSpec,
    Topology,
    flat_topology,
    sunway_topology,
    two_level_topology,
)


class TestLinkSpec:
    def test_beta_is_inverse_bandwidth(self):
        link = LinkSpec(latency=1e-6, bandwidth=1e9)
        assert link.beta == pytest.approx(1e-9)

    def test_transfer_time(self):
        link = LinkSpec(latency=1e-6, bandwidth=1e9)
        assert link.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_contended_transfer_uses_effective_bandwidth(self):
        link = LinkSpec(latency=0.0, bandwidth=1e9, oversubscription=4.0)
        assert link.transfer_time(1000, contended=True) == pytest.approx(4e-6)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency=-1.0, bandwidth=1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency=0.0, bandwidth=0.0)

    def test_oversubscription_below_one_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency=0.0, bandwidth=1e9, oversubscription=0.5)

    def test_scaled(self):
        link = LinkSpec(latency=2e-6, bandwidth=1e9)
        s = link.scaled(latency_factor=0.5, bandwidth_factor=2.0)
        assert s.latency == pytest.approx(1e-6)
        assert s.bandwidth == pytest.approx(2e9)


def _two_level(g=4, n=3):
    return two_level_topology(group_size=g, num_groups=n)


class TestTopology:
    def test_num_nodes(self):
        assert _two_level(4, 3).num_nodes == 12

    def test_coords_roundtrip(self):
        topo = _two_level(4, 3)
        for node in range(topo.num_nodes):
            assert topo.node_at(topo.coords(node)) == node

    def test_coords_innermost_first(self):
        topo = _two_level(4, 3)
        assert topo.coords(5) == (1, 1)  # node 5 = group 1, position 1

    def test_span_level_same_node(self):
        assert _two_level().span_level(3, 3) == -1

    def test_span_level_same_group(self):
        assert _two_level().span_level(0, 3) == 0

    def test_span_level_cross_group(self):
        assert _two_level().span_level(0, 4) == 1

    def test_span_level_of_set(self):
        topo = _two_level()
        assert topo.span_level_of([0, 1, 2]) == 0
        assert topo.span_level_of([0, 5]) == 1
        assert topo.span_level_of([7]) == -1

    def test_group_of(self):
        topo = _two_level(4, 3)
        assert topo.group_of(0, 0) == 0
        assert topo.group_of(4, 0) == 1
        assert topo.group_of(11, 0) == 2

    def test_group_size(self):
        topo = _two_level(4, 3)
        assert topo.group_size(0) == 4
        assert topo.group_size(1) == 12
        assert topo.num_groups(0) == 3

    def test_link_between_same_node_is_none(self):
        assert _two_level().link_between(2, 2) is None

    def test_link_between_levels(self):
        topo = _two_level()
        intra = topo.link_between(0, 1)
        inter = topo.link_between(0, 4)
        assert intra is topo.levels[0].link
        assert inter is topo.levels[1].link

    def test_node_out_of_range(self):
        with pytest.raises(TopologyError):
            _two_level().coords(100)

    def test_bad_level(self):
        with pytest.raises(TopologyError):
            _two_level().link_at(5)

    def test_level_named(self):
        topo = _two_level()
        assert topo.level_named("node") == 0
        assert topo.level_named("group") == 1
        with pytest.raises(TopologyError):
            topo.level_named("cabinet")

    def test_empty_levels_rejected(self):
        with pytest.raises(TopologyError):
            Topology([])

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=2, max_value=8))
    def test_span_symmetry(self, g, n):
        topo = two_level_topology(g, n)
        a, b = 0, topo.num_nodes - 1
        assert topo.span_level(a, b) == topo.span_level(b, a)


class TestPresets:
    def test_sunway_small_is_flat(self):
        topo = sunway_topology(64)
        assert topo.num_levels == 1
        assert topo.num_nodes == 64

    def test_sunway_large_has_supernodes(self):
        topo = sunway_topology(1024, supernode_size=256)
        assert topo.num_levels == 2
        assert topo.num_nodes == 1024
        assert topo.group_size(0) == 256

    def test_sunway_headline_machine(self):
        topo = sunway_topology(96_000)
        assert topo.num_nodes >= 96_000

    def test_sunway_invalid(self):
        with pytest.raises(TopologyError):
            sunway_topology(0)

    def test_flat_topology(self):
        topo = flat_topology(8)
        assert topo.num_levels == 1
        assert topo.span_level(0, 7) == 0

    def test_sunway_cross_supernode_slower_link(self):
        topo = sunway_topology(512, supernode_size=256)
        intra = topo.link_between(0, 1)
        inter = topo.link_between(0, 256)
        assert inter.latency > intra.latency
        assert inter.oversubscription > intra.oversubscription


class TestCabinetTopology:
    def test_three_levels(self):
        from repro.network import cabinet_topology

        topo = cabinet_topology(nodes_per_supernode=4, supernodes_per_cabinet=2,
                                num_cabinets=3)
        assert topo.num_levels == 3
        assert topo.num_nodes == 24
        assert topo.level_named("cabinet") == 2

    def test_span_levels_across_hierarchy(self):
        from repro.network import cabinet_topology

        topo = cabinet_topology(4, 2, 3)
        assert topo.span_level(0, 1) == 0    # same supernode
        assert topo.span_level(0, 4) == 1    # same cabinet, other supernode
        assert topo.span_level(0, 8) == 2    # other cabinet

    def test_latency_grows_up_the_hierarchy(self):
        from repro.network import cabinet_topology

        topo = cabinet_topology(4, 2, 3)
        l0 = topo.link_between(0, 1).latency
        l1 = topo.link_between(0, 4).latency
        l2 = topo.link_between(0, 8).latency
        assert l0 < l1 < l2

    def test_hierarchical_collectives_work_on_three_levels(self):
        from repro.network import cabinet_topology
        from repro.network.collectives import (
            cost_hierarchical_allreduce,
            cost_hierarchical_alltoall,
            cost_ring_allreduce,
            cost_flat_alltoall,
        )

        topo = cabinet_topology(8, 4, 4)  # 128 nodes
        nodes = list(range(topo.num_nodes))
        # Hierarchical variants beat flat at this scale for small payloads.
        assert cost_hierarchical_alltoall(topo, 256, nodes) < cost_flat_alltoall(
            topo, 256, nodes
        )
        assert cost_hierarchical_allreduce(topo, 1e7, nodes) < cost_ring_allreduce(
            topo, 1e7, nodes
        )

    def test_invalid_arity(self):
        from repro.errors import TopologyError
        from repro.network import cabinet_topology

        with pytest.raises(TopologyError):
            cabinet_topology(0, 1, 1)
