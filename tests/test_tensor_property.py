"""Property-based tests of autograd invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, softmax, unbroadcast
from repro.tensor import ops as T

small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32)


def arr(shape=None):
    return arrays(
        dtype=np.float64,
        shape=shape or array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
        elements=small_floats,
    )


@given(arr())
@settings(max_examples=40, deadline=None)
def test_add_commutative(a):
    x, y = Tensor(a, dtype="fp64"), Tensor(a * 0.5 + 1, dtype="fp64")
    assert np.allclose((x + y).data, (y + x).data)


@given(arr())
@settings(max_examples=40, deadline=None)
def test_mul_by_one_identity(a):
    x = Tensor(a, dtype="fp64")
    assert np.allclose((x * 1.0).data, a)


@given(arr())
@settings(max_examples=40, deadline=None)
def test_double_negation(a):
    x = Tensor(a, dtype="fp64")
    assert np.allclose((-(-x)).data, a)


@given(arr())
@settings(max_examples=40, deadline=None)
def test_sum_grad_is_ones(a):
    x = Tensor(a, requires_grad=True, dtype="fp64")
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(a))


@given(arr())
@settings(max_examples=40, deadline=None)
def test_linear_grad_is_coefficient(a):
    x = Tensor(a, requires_grad=True, dtype="fp64")
    (x * 3.5).sum().backward()
    assert np.allclose(x.grad, 3.5)


@given(arr())
@settings(max_examples=30, deadline=None)
def test_chain_rule_scaling(a):
    """d/dx of f(2x) = 2 f'(2x): doubling input scale doubles gradients."""
    x1 = Tensor(a, requires_grad=True, dtype="fp64")
    T.tanh(x1 * 1.0).sum().backward()
    x2 = Tensor(a, requires_grad=True, dtype="fp64")
    T.tanh(x2 * 2.0).sum().backward()
    # tanh'(2a)*2 vs tanh'(a): no fixed relation in general, but both finite
    # and the graph machinery must produce the analytic values.
    assert np.allclose(x1.grad, 1.0 - np.tanh(a) ** 2, atol=1e-10)
    assert np.allclose(x2.grad, 2.0 * (1.0 - np.tanh(2 * a) ** 2), atol=1e-10)


@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 5)), elements=small_floats)
)
@settings(max_examples=40, deadline=None)
def test_softmax_invariant_to_shift(a):
    s1 = softmax(Tensor(a, dtype="fp64")).data
    s2 = softmax(Tensor(a + 123.0, dtype="fp64")).data
    assert np.allclose(s1, s2, atol=1e-10)


@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 5)), elements=small_floats)
)
@settings(max_examples=40, deadline=None)
def test_softmax_grad_orthogonal_to_constant(a):
    """J_softmax^T 1 = 0: gradient of sum(softmax) w.r.t. logits is zero."""
    x = Tensor(a, requires_grad=True, dtype="fp64")
    softmax(x).sum().backward()
    assert np.allclose(x.grad, 0.0, atol=1e-8)


@given(arr(shape=(3, 4)), st.sampled_from([(3, 4), (1, 4), (4,), (3, 1), (1, 1), ()]))
@settings(max_examples=60, deadline=None)
def test_unbroadcast_inverts_broadcast(g, shape):
    reduced = unbroadcast(g.copy(), shape)
    assert reduced.shape == shape
    # Total mass is conserved by summation.
    assert np.isclose(reduced.sum(), g.sum())


@given(arr())
@settings(max_examples=30, deadline=None)
def test_reshape_roundtrip_preserves_grad(a):
    x = Tensor(a, requires_grad=True, dtype="fp64")
    y = x.reshape(-1).reshape(a.shape)
    (y * 2.0).sum().backward()
    assert np.allclose(x.grad, 2.0)


@given(
    arrays(np.float64, st.tuples(st.integers(2, 4), st.integers(2, 4)), elements=small_floats)
)
@settings(max_examples=30, deadline=None)
def test_matmul_identity(a):
    x = Tensor(a, dtype="fp64")
    eye = Tensor(np.eye(a.shape[1]), dtype="fp64")
    assert np.allclose((x @ eye).data, a, atol=1e-8)
