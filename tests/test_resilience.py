"""Elastic fault-tolerant training: fault models, supervisor, resharding.

The load-bearing claims tested here:

* :class:`~repro.simmpi.FaultModel` is seeded and exactly reproducible —
  MTBF crash times, straggler slowdowns and flaky-link outcomes all
  derive from (seed, launch_index, node);
* the :class:`~repro.resilience.Supervisor` only retries modelled
  failures (programming errors propagate), backs off exponentially, and
  shrinks the world around a repeat-offender node;
* a shrunken world reproduces the healthy full-world loss trajectory
  **bitwise** from the restored step onward (the fold-carry elastic
  driver), including optimizer state restored mid-run;
* a snapshot whose shard files were lost after the save is rejected and
  recovery falls back to the previous one.
"""

import numpy as np
import pytest

from repro.errors import (
    CommunicatorError,
    ConfigError,
    DeadlockError,
    FaultInjected,
    OverflowDetected,
    ReproError,
)
from repro.models import tiny_config
from repro.parallel.dist_checkpoint import latest_snapshot, verify_snapshot
from repro.parallel.runner import TrainingRunConfig, run_distributed_training
from repro.resilience import (
    ElasticRunConfig,
    Supervisor,
    classify_failure,
    run_elastic_training,
)
from repro.simmpi import FaultModel, FaultPlan, FlakyLink, run_spmd
from repro.train.metrics import MetricsLogger, read_jsonl

CFG = tiny_config()
STEPS = 6


@pytest.fixture(scope="module")
def healthy_losses():
    """Reference trajectory: plain runner, world 4, ep 2."""
    res = run_distributed_training(
        TrainingRunConfig(
            model=CFG, world_size=4, ep_size=2, num_steps=STEPS,
            batch_size=2, seq_len=8, seed=0,
        )
    )
    return res.losses


def make_cfg(tmp_path, **overrides) -> ElasticRunConfig:
    kwargs = dict(
        model=CFG, world_size=4, ep_size=2, total_steps=STEPS,
        checkpoint_every=2, checkpoint_dir=tmp_path / "ckpt",
        batch_size=2, seq_len=8, seed=0, max_restarts=8,
    )
    kwargs.update(overrides)
    return ElasticRunConfig(**kwargs)


# ---------------------------------------------------------------------- #
# FaultModel
# ---------------------------------------------------------------------- #


class TestFaultModel:
    def test_mtbf_draws_are_deterministic(self):
        probes = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0]
        a = FaultModel(seed=5, mtbf=0.01)
        b = FaultModel(seed=5, mtbf=0.01)
        a.on_launch(4)
        b.on_launch(4)
        for rank in range(4):
            for t in probes:
                assert a.should_kill(rank, 0, clock=t) == b.should_kill(
                    rank, 0, clock=t
                )

    def test_mtbf_redrawn_per_launch(self):
        fm = FaultModel(seed=3, mtbf=1.0)
        draws = []
        for _ in range(4):
            fm.on_launch(2)
            draws.append(
                tuple(
                    min(t for t in np.linspace(0.01, 10, 500)
                        if fm.should_kill(r, 0, clock=t))
                    for r in range(2)
                )
            )
        assert len(set(draws)) > 1, "failure times never changed across launches"

    def test_dead_node_kills_with_rank_attributed(self):
        with pytest.raises(FaultInjected) as exc_info:
            run_spmd(
                lambda comm: comm.allreduce(1),
                4,
                faults=FaultModel(seed=0, dead_nodes=(1,)),
            )
        assert exc_info.value.rank == 1
        # The engine ferries partial observations for goodput accounting.
        assert hasattr(exc_info.value, "partial_clocks")

    def test_exclusion_remaps_ranks_around_dead_node(self):
        fm = FaultModel(seed=0, dead_nodes=(1,))
        fm.exclude_node(1)
        res = run_spmd(lambda comm: comm.allreduce(1), 2, faults=fm)
        assert res.returns == [2, 2]
        assert [fm.node_of_rank(r) for r in range(2)] == [0, 2]

    def test_straggler_scales_virtual_clock(self):
        def program(comm):
            comm.advance(1.0)
            return comm.clock

        fm = FaultModel(seed=0, stragglers={1: 5.0})
        res = run_spmd(program, 2, faults=fm)
        assert res.returns[0] == pytest.approx(1.0)
        assert res.returns[1] == pytest.approx(5.0)

    def test_flaky_link_certain_drop_deadlocks(self):
        fm = FaultModel(seed=0, flaky_links=(FlakyLink(0, 1, drop_prob=1.0),))

        def program(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1)
            else:
                comm.recv(source=0)

        with pytest.raises(DeadlockError):
            run_spmd(program, 2, faults=fm, timeout=1.0)

    def test_flaky_link_certain_delay(self):
        fm = FaultModel(
            seed=0, flaky_links=(FlakyLink(0, 1, delay_prob=1.0, delay=3.0),)
        )

        def program(comm):
            if comm.rank == 0:
                comm.send("slow", dest=1)
                return comm.clock
            comm.recv(source=0)
            return comm.clock

        res = run_spmd(program, 2, faults=fm)
        assert res.returns[1] >= 3.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(mtbf=0.0)
        with pytest.raises(ConfigError):
            FaultModel(stragglers={0: 0.5})
        with pytest.raises(ConfigError):
            FlakyLink(0, 1, drop_prob=1.5)
        with pytest.raises(ConfigError):
            FaultModel().node_of_rank(0)


# ---------------------------------------------------------------------- #
# Failure classification
# ---------------------------------------------------------------------- #


class TestClassification:
    def test_classify_failure_names(self):
        assert classify_failure(FaultInjected("x", rank=1)) == "fault"
        assert classify_failure(DeadlockError("x")) == "deadlock"
        assert classify_failure(OverflowDetected("x")) == "overflow"
        assert classify_failure(CommunicatorError("x")) == "CommunicatorError"

    def test_programming_error_propagates(self, tmp_path):
        """A TypeError inside the rank program must never trigger a restart."""

        class BrokenPlan(FaultPlan):
            def should_kill(self, rank, op_index, clock=0.0):
                raise TypeError("bug, not a hardware fault")

        with pytest.raises(TypeError, match="bug, not a hardware fault"):
            Supervisor(make_cfg(tmp_path), fault_plans=[BrokenPlan()]).run()

    def test_gives_up_after_max_restarts(self, tmp_path):
        cfg = make_cfg(tmp_path, elastic=False, max_restarts=2)
        fm = FaultModel(seed=0, dead_nodes=(3,))
        with pytest.raises(CommunicatorError, match="giving up"):
            Supervisor(cfg, faults=fm).run()


# ---------------------------------------------------------------------- #
# Supervisor: healthy + scripted recovery
# ---------------------------------------------------------------------- #


class TestSupervisor:
    def test_healthy_run_matches_plain_runner_bitwise(self, tmp_path, healthy_losses):
        res = Supervisor(make_cfg(tmp_path)).run()
        assert res.losses == healthy_losses
        assert res.restarts == 0 and res.shrinks == 0
        assert res.goodput == 1.0 and res.availability == 1.0
        assert [e["kind"] for e in res.context.events] == ["launch", "complete"]

    def test_scripted_midrun_crash_resumes_exactly(self, tmp_path, healthy_losses):
        """Optimizer state + params restored mid-run reproduce the healthy
        trajectory bitwise; the redone step counts as lost work."""
        plan = FaultPlan().kill_rank(2, at_op=60)
        res = Supervisor(make_cfg(tmp_path), fault_plans=[plan, None]).run()
        assert res.restarts == 1
        assert res.first_step == 2
        assert res.losses == healthy_losses[res.first_step:]
        assert res.lost_steps == 1  # step 3 completed, then died before ckpt 4
        assert res.lost_time > 0.0
        failure = res.context.events_of("failure")[0]
        assert failure["failure"] == "fault" and failure["rank"] == 2

    def test_backoff_grows_and_caps(self, tmp_path):
        cfg = make_cfg(
            tmp_path, elastic=False, max_restarts=4,
            backoff_base=2.0, backoff_factor=3.0, backoff_cap=10.0,
        )
        plans = [FaultPlan().kill_rank(0, at_op=0) for _ in range(3)] + [None]
        res = Supervisor(cfg, fault_plans=plans).run()
        waits = [e["seconds"] for e in res.context.events_of("backoff")]
        assert waits == [2.0, 6.0, 10.0]  # 2, 2*3, capped at 10
        assert res.backoff_time == pytest.approx(18.0)
        assert res.context.phase_seconds["backoff"] == pytest.approx(18.0)

    def test_run_elastic_training_wrapper(self, tmp_path, healthy_losses):
        res = run_elastic_training(make_cfg(tmp_path))
        assert res.losses == healthy_losses


# ---------------------------------------------------------------------- #
# The acceptance scenario: stochastic faults + permanent dead node
# ---------------------------------------------------------------------- #


class TestElasticAcceptance:
    def _run(self, tmp_path):
        fm = FaultModel(seed=0, mtbf=1e-3, dead_nodes=(3,))
        return Supervisor(make_cfg(tmp_path), faults=fm).run()

    def test_shrink_and_reshard_reproduces_trajectory(self, tmp_path, healthy_losses):
        res = self._run(tmp_path)
        # The world shrank around the dead node and finished on 2 ranks.
        assert res.shrinks == 1
        assert res.final_world_size == 2
        assert res.world_history[0] == 4 and res.world_history[-1] == 2
        # Bitwise equality with the healthy 4-rank run from the restored step.
        assert res.first_step > 0
        assert res.losses == healthy_losses[res.first_step:]
        # Both the permanent node and MTBF crashes contributed failures.
        failures = res.context.events_of("failure")
        assert any(e["node"] == 3 for e in failures)
        assert any(e["node"] != 3 for e in failures)

    def test_recovery_events_in_context(self, tmp_path):
        res = self._run(tmp_path)
        kinds = {e["kind"] for e in res.context.events}
        assert {"launch", "failure", "backoff", "elastic_restart",
                "reshard", "complete"} <= kinds
        reshard = res.context.events_of("reshard")[0]
        assert (reshard["from_world"], reshard["to_world"]) == (4, 2)
        assert reshard["microsteps"] == 2
        restart = res.context.events_of("elastic_restart")[0]
        assert restart["node"] == 3 and restart["strikes"] >= 2

    def test_session_is_deterministic(self, tmp_path):
        a = self._run(tmp_path / "a")
        b = self._run(tmp_path / "b")
        assert a.losses == b.losses
        assert a.restarts == b.restarts and a.shrinks == b.shrinks
        assert a.world_history == b.world_history
        assert a.total_time == b.total_time
        assert [e["kind"] for e in a.context.events] == [
            e["kind"] for e in b.context.events
        ]

    def test_goodput_accounting_closes(self, tmp_path):
        res = self._run(tmp_path)
        assert res.total_time == pytest.approx(
            res.useful_time + res.lost_time + res.backoff_time
        )
        assert 0.0 < res.goodput < 1.0
        assert 0.0 < res.availability < 1.0
        assert res.backoff_time > 0.0

    def test_trace_carries_recovery_events(self, tmp_path):
        fm = FaultModel(seed=0, mtbf=1e-3, dead_nodes=(3,))
        res = Supervisor(make_cfg(tmp_path, trace=True), faults=fm).run()
        ops = {e.op for e in res.context.trace_events}
        assert "event:elastic_restart" in ops
        assert "event:reshard" in ops
        assert any(op.startswith("allreduce") for op in ops)

    def test_metrics_record_and_log_events(self, tmp_path):
        res = self._run(tmp_path)
        record = res.metrics_record()
        assert record["events_reshard"] == 1
        assert record["events_launch"] == len(res.world_history)
        assert 0.0 < record["goodput"] < 1.0
        path = tmp_path / "events.jsonl"
        with MetricsLogger(path) as logger:
            n = logger.log_events(res.context.events, session="acceptance")
        rows = read_jsonl(path)
        assert len(rows) == n == len(res.context.events)
        assert all(r["session"] == "acceptance" for r in rows)
        with MetricsLogger(tmp_path / "events.csv") as logger:
            with pytest.raises(ConfigError):
                logger.log_events(res.context.events)


# ---------------------------------------------------------------------- #
# Snapshot verification under recovery
# ---------------------------------------------------------------------- #


class TestSnapshotFallback:
    def _seed_snapshots(self, tmp_path):
        """A healthy run leaves verified snapshots at steps 2, 4 and 6."""
        res = Supervisor(make_cfg(tmp_path)).run()
        assert res.checkpoint_steps == [2, 4, 6]
        return tmp_path / "ckpt"

    def test_deleted_expert_shard_disqualifies_snapshot(
        self, tmp_path, healthy_losses
    ):
        ckpt_dir = self._seed_snapshots(tmp_path)
        (ckpt_dir / "step-000006" / "experts_0of2.npz").unlink()
        with pytest.raises(Exception, match="missing shard"):
            verify_snapshot(ckpt_dir / "step-000006")
        path, step = latest_snapshot(ckpt_dir)
        assert step == 4 and path.name == "step-000004"
        # Recovery resumes from the surviving snapshot and reproduces the
        # healthy tail exactly.
        res = Supervisor(make_cfg(tmp_path, total_steps=STEPS)).run()
        assert res.first_step == 4
        assert res.losses == healthy_losses[4:]

    def test_truncated_shard_disqualifies_snapshot(self, tmp_path):
        ckpt_dir = self._seed_snapshots(tmp_path)
        shard = ckpt_dir / "step-000006" / "optim_experts_1of2.npz"
        shard.write_bytes(shard.read_bytes()[:20])
        with pytest.raises(Exception, match="truncated or corrupt"):
            verify_snapshot(ckpt_dir / "step-000006")
        _, step = latest_snapshot(ckpt_dir)
        assert step == 4
