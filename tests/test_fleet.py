"""Fault-tolerant serving fleet: router, retries, hedging, degradation.

The load-bearing guarantees:

* a fleet of one with faults disabled is *bitwise* the plain serving
  engine — same tokens, same traffic, same virtual makespan;
* under injected crashes every admitted request either completes with
  exactly the tokens an uncrashed run produces (decode is a pure
  function of the prompt, so re-prefill on a survivor is lossless) or is
  *explicitly* evicted/shed with a reason — never silently lost;
* the crashed-replica backoff schedule is the same capped-exponential
  policy the elastic training supervisor waits between relaunches;
* admission control sheds only sheddable tiers and KV-budget pressure
  degrades gracefully (lowest-priority slot evicted, run survives).
"""

import numpy as np
import pytest

from repro.errors import ConfigError, FaultInjected, ReproError
from repro.models import tiny_config
from repro.resilience import BackoffPolicy, ElasticRunConfig
from repro.serve import (
    FleetConfig,
    ReplicaRouter,
    ServeConfig,
    run_fleet_serving,
    run_serving,
)
from repro.simmpi import FaultPlan

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def cfg():
    return tiny_config()


def _serve_cfg(cfg, **kw):
    base = dict(model=cfg, ep_size=2, num_requests=6, prompt_len=4,
                prompt_len_max=7, max_new_tokens=5, max_batch_size=3, seed=0)
    base.update(kw)
    return ServeConfig(**base)


def _tokens_by_rid(result):
    return {r["rid"]: tuple(r["tokens"]) for r in result.requests
            if r["state"] == "done"}


# --------------------------------------------------------------------- #
# BackoffPolicy: the shared retry schedule
# --------------------------------------------------------------------- #


class TestBackoffPolicy:
    def test_capped_exponential_schedule(self):
        policy = BackoffPolicy(base=2.0, factor=3.0, cap=10.0)
        assert policy.schedule(4) == [2.0, 6.0, 10.0, 10.0]

    def test_supervisor_and_fleet_share_one_schedule(self):
        """The satellite guarantee: training supervisor retries and fleet
        replica backoff follow the *identical* schedule object."""
        sup = ElasticRunConfig(
            model=tiny_config(), world_size=2, ep_size=2, total_steps=1,
            checkpoint_every=1, checkpoint_dir="/tmp/x",
            backoff_base=2.0, backoff_factor=3.0, backoff_cap=10.0,
        ).backoff_policy()
        fleet = FleetConfig(
            serve=ServeConfig(model=tiny_config()),
            backoff_base=2.0, backoff_factor=3.0, backoff_cap=10.0,
        ).backoff_policy()
        assert sup == fleet
        assert sup.schedule(5) == fleet.schedule(5)

    def test_jitter_is_seeded_and_bounded(self):
        a = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        b = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        c = BackoffPolicy(base=1.0, jitter=0.5, seed=8)
        assert a.delay(1) == b.delay(1)
        assert a.delay(1) != c.delay(1)
        nominal = BackoffPolicy(base=1.0)
        for n in range(1, 6):
            assert 0.5 * nominal.delay(n) <= a.delay(n) <= 1.5 * nominal.delay(n)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ConfigError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            BackoffPolicy().delay(0)


# --------------------------------------------------------------------- #
# Scripted mid-run kills on the virtual clock
# --------------------------------------------------------------------- #


class TestKillRankAtTime:
    def test_fires_only_past_the_virtual_time(self):
        plan = FaultPlan().kill_rank_at(1, at_time=5.0)
        assert not plan.should_kill(1, op_index=100, clock=4.999)
        assert plan.should_kill(1, op_index=0, clock=5.0)
        assert not plan.should_kill(0, op_index=0, clock=99.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            FaultPlan().kill_rank_at(0, at_time=-1.0)

    def test_mid_decode_crash_surfaces_with_partial_state(self, cfg):
        """A rank killed mid-decode raises FaultInjected with partial
        clocks/context attached — the contract the fleet redispatch
        relies on."""
        scfg = _serve_cfg(cfg, observe=True)
        healthy = run_serving(scfg)
        t_kill = healthy.simulated_time / 2
        with pytest.raises(FaultInjected) as info:
            run_serving(scfg, faults=FaultPlan().kill_rank_at(0, t_kill))
        exc = info.value
        assert exc.partial_clocks and max(exc.partial_clocks) >= t_kill
        assert exc.partial_context is not None
        assert exc.flight_dump is not None and exc.flight_dump["ranks"]


# --------------------------------------------------------------------- #
# ReplicaRouter policy
# --------------------------------------------------------------------- #


class TestReplicaRouter:
    def test_round_robin_before_any_service_history(self):
        router = ReplicaRouter(3)
        picks = []
        for _ in range(6):
            s = router.pick(0.0)
            picks.append(s.index)
            router.on_dispatch(s.index)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_crash_gates_dispatch_until_backoff_expires(self):
        router = ReplicaRouter(2, backoff=BackoffPolicy(base=4.0, factor=2.0,
                                                        cap=100.0))
        down = router.on_crash(0, crash_t=1.0)
        assert down == 5.0
        assert not router.states[0].healthy(4.9)
        assert router.states[0].healthy(5.0)
        # A ready-now request routes to the healthy replica.
        assert router.pick(1.0).index == 1
        assert router.next_recovery(1.0) == 5.0
        # Consecutive failures escalate: 4, then 8.
        assert router.on_crash(0, crash_t=6.0) == 14.0
        router.on_segment_done(0, 14.0, 15.0, served=1)
        assert router.states[0].consecutive_failures == 0

    def test_learned_service_time_balances_queues(self):
        router = ReplicaRouter(2)
        router.on_segment_done(0, 0.0, 10.0, served=10)  # 1 s/request
        assert router.mean_service == 1.0
        router.on_dispatch(0, 3)
        # Replica 1 idles at t=10 < replica 0's 3-deep queue estimate.
        router.states[1].free_at = 10.0
        assert router.pick(0.0).index == 1

    def test_exclusion_for_hedges(self):
        router = ReplicaRouter(2)
        assert router.pick(0.0, exclude=(0,)).index == 1
        assert router.pick(0.0, exclude=(0, 1)) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReplicaRouter(0)


# --------------------------------------------------------------------- #
# Fleet-of-one bitwise regression vs the plain engine
# --------------------------------------------------------------------- #


class TestFleetBaselineEquivalence:
    def test_single_replica_no_faults_is_the_plain_engine(self, cfg):
        scfg = _serve_cfg(cfg, arrival_rate=200.0, observe=True)
        base = run_serving(scfg)
        fleet = run_fleet_serving(FleetConfig(serve=scfg, replicas=1))
        assert _tokens_by_rid(fleet) == _tokens_by_rid(base)
        assert fleet.completed == base.completed
        assert fleet.evicted == base.evicted
        assert fleet.shed == base.shed
        assert fleet.decode_tokens == base.decode_tokens
        assert fleet.simulated_time == base.simulated_time
        # Byte-identical traffic: the fleet path added zero communication.
        assert fleet.context.stats.summary() == base.context.stats.summary()

    def test_fleet_ttft_matches_engine_ttft(self, cfg):
        scfg = _serve_cfg(cfg, arrival_rate=200.0)
        base = run_serving(scfg)
        fleet = run_fleet_serving(FleetConfig(serve=scfg, replicas=1))
        # The fleet aggregates per rid, the engine per rank: same samples,
        # possibly different insertion order.
        assert sorted(fleet.ttft.samples) == pytest.approx(
            sorted(base.ttft.samples)
        )
        assert sorted(fleet.token_latency.samples) == pytest.approx(
            sorted(base.token_latency.samples)
        )


# --------------------------------------------------------------------- #
# Crash recovery: no request is ever silently lost
# --------------------------------------------------------------------- #


class TestFleetCrashRecovery:
    def test_seeded_crash_sweep_loses_nothing(self, cfg):
        """Across seeds and fault rates: every request reaches a terminal
        state, and completed tokens equal the uncrashed reference."""
        for seed in (0, 1):
            scfg = _serve_cfg(cfg, seed=seed, arrival_rate=500.0)
            reference = _tokens_by_rid(run_serving(scfg))
            for mtbf in (0.004, 0.02):
                fleet = run_fleet_serving(FleetConfig(
                    serve=scfg, replicas=2, mtbf=mtbf,
                    retry_max=4, backoff_base=0.05, backoff_cap=0.4,
                ))
                states = {r["rid"]: r["state"] for r in fleet.requests}
                assert sorted(states) == list(range(scfg.num_requests))
                assert all(s in ("done", "evicted", "shed")
                           for s in states.values())
                for rid, tokens in _tokens_by_rid(fleet).items():
                    assert tokens == reference[rid], (seed, mtbf, rid)
                evicted = [r for r in fleet.requests
                           if r["state"] == "evicted"]
                assert all(r["reason"] for r in evicted)

    def test_crash_redispatches_to_survivor_and_completes(self, cfg):
        scfg = _serve_cfg(cfg, arrival_rate=200.0, observe=True)
        reference = _tokens_by_rid(run_serving(scfg))
        fleet = run_fleet_serving(FleetConfig(
            serve=scfg, replicas=2, mtbf=0.005,
            backoff_base=0.05, backoff_cap=0.4,
        ))
        assert fleet.crashes > 0 and fleet.retries > 0
        assert _tokens_by_rid(fleet) == {
            rid: reference[rid] for rid in _tokens_by_rid(fleet)
        }
        kinds = {e["kind"] for e in fleet.context.events}
        assert {"fleet_dispatch", "replica_crash", "redispatch"} <= kinds
        crash = next(e for e in fleet.context.events
                     if e["kind"] == "replica_crash")
        assert crash["down_until"] > crash["t"]
        assert "flight_events" in crash

    def test_retry_budget_exhaustion_is_explicit(self, cfg):
        """A fleet whose only replica dies instantly every launch evicts
        everything with reason='retries' instead of looping or losing."""
        scfg = _serve_cfg(cfg, num_requests=4)
        fleet = run_fleet_serving(FleetConfig(
            serve=scfg, replicas=1, mtbf=1e-9, retry_max=2,
            backoff_base=0.01, backoff_cap=0.05,
        ))
        assert fleet.completed == 0
        assert all(r["state"] == "evicted" and r["reason"] == "retries"
                   for r in fleet.requests)
        assert all(r["attempts"] == 3 for r in fleet.requests)

    def test_two_replicas_beat_one_on_goodput(self, cfg):
        # Capacity-limited regime (all arrive at t=0) with an MTBF near
        # the healthy makespan, so the single replica pays crash + backoff
        # + full redispatch while the pair splits the work and recovers
        # on the survivor.
        scfg = _serve_cfg(cfg, num_requests=20)
        kw = dict(mtbf=3e-4, backoff_base=2e-4, backoff_cap=2e-3,
                  retry_max=4)
        one = run_fleet_serving(FleetConfig(serve=scfg, replicas=1, **kw))
        two = run_fleet_serving(FleetConfig(serve=scfg, replicas=2, **kw))
        assert one.crashes > 0
        assert two.goodput > one.goodput


# --------------------------------------------------------------------- #
# Hedging and timeouts
# --------------------------------------------------------------------- #


class TestHedgingAndTimeouts:
    def test_hedge_fires_and_never_worsens_latency(self, cfg):
        scfg = _serve_cfg(cfg, arrival_rate=200.0, observe=True)
        plain = run_fleet_serving(FleetConfig(serve=scfg, replicas=2))
        hedged = run_fleet_serving(FleetConfig(
            serve=scfg, replicas=2, hedge_after_ms=1e-4,
        ))
        assert hedged.hedges > 0
        assert hedged.completed == plain.completed
        assert _tokens_by_rid(hedged) == _tokens_by_rid(plain)
        plain_fin = {r["rid"]: r["finish"] for r in plain.requests
                     if r["state"] == "done"}
        for rec in hedged.requests:
            if rec["state"] == "done":
                assert rec["finish"] <= plain_fin[rec["rid"]] + 1e-12
        assert any(e["kind"] == "hedge" for e in hedged.context.events)

    def test_impossible_timeout_exhausts_retries_explicitly(self, cfg):
        scfg = _serve_cfg(cfg, num_requests=4)
        fleet = run_fleet_serving(FleetConfig(
            serve=scfg, replicas=2, request_timeout_ms=1e-9, retry_max=1,
        ))
        assert fleet.timeouts > 0
        assert fleet.completed == 0
        assert all(r["reason"] == "retries" for r in fleet.requests)


# --------------------------------------------------------------------- #
# Admission control: tiered shedding + KV-budget degradation
# --------------------------------------------------------------------- #


class TestGracefulDegradation:
    def test_shedding_rejects_only_high_tiers(self, cfg):
        scfg = _serve_cfg(
            cfg, num_requests=24, max_batch_size=2, num_tiers=2,
            shed_tier=1, queue_depth=3, observe=True,
        )
        result = run_serving(scfg)
        shed = [r for r in result.requests if r["state"] == "shed"]
        assert result.shed == len(shed) > 0
        assert all(r["tier"] == 1 for r in shed)
        assert all(r["reason"] == "shed" for r in shed)
        assert result.completed + result.evicted + result.shed == 24
        assert any(e["kind"] == "shed" for e in result.context.events)

    def test_tiering_uses_a_dedicated_stream(self, cfg):
        """Adding tiers must not perturb prompts/arrivals (bitwise)."""
        base = run_serving(_serve_cfg(cfg))
        tiered = run_serving(_serve_cfg(cfg, num_tiers=2))
        base_prompts = {r["rid"]: r["prompt_len"] for r in base.requests}
        tiered_prompts = {r["rid"]: r["prompt_len"] for r in tiered.requests}
        assert base_prompts == tiered_prompts
        assert _tokens_by_rid(base) == _tokens_by_rid(tiered)

    def test_kv_budget_pressure_evicts_gracefully(self, cfg):
        """An over-committed cache evicts the lowest-priority slot and
        keeps serving — no CacheOverflow escapes the run."""
        budget = (7 + 5) + 3  # one full request + a little headroom
        scfg = _serve_cfg(
            cfg, num_requests=8, num_tiers=2, kv_token_budget=budget,
            observe=True,
        )
        result = run_serving(scfg)
        cache_evicted = [r for r in result.requests
                         if r["state"] == "evicted" and r["reason"] == "cache"]
        assert cache_evicted
        assert result.completed > 0
        assert result.completed + result.evicted == 8
        assert any(e["kind"] == "cache_evict" for e in result.context.events)

    def test_fleet_of_crashing_replicas_still_sheds_by_tier(self, cfg):
        scfg = _serve_cfg(
            cfg, num_requests=16, max_batch_size=2, num_tiers=2,
            shed_tier=1, queue_depth=2,
        )
        fleet = run_fleet_serving(FleetConfig(
            serve=scfg, replicas=2, mtbf=0.01,
            backoff_base=0.05, backoff_cap=0.4,
        ))
        assert fleet.shed > 0
        assert set(fleet.shed_by_tier) == {1}
        assert fleet.completed + fleet.evicted + fleet.shed == 16


# --------------------------------------------------------------------- #
# Config validation + CLI plumbing
# --------------------------------------------------------------------- #


class TestFleetConfigAndCLI:
    def test_validation(self, cfg):
        scfg = _serve_cfg(cfg)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, replicas=0)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, mtbf=0.0)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, retry_max=-1)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, replicas=1, hedge_after_ms=5.0)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, request_timeout_ms=0.0)
        with pytest.raises(ConfigError):
            FleetConfig(serve=scfg, backoff_factor=0.1)

    def test_serve_config_validation(self, cfg):
        with pytest.raises(ConfigError):
            _serve_cfg(cfg, num_tiers=0)
        with pytest.raises(ConfigError):
            _serve_cfg(cfg, num_tiers=2, shed_tier=2)
        with pytest.raises(ConfigError):
            _serve_cfg(cfg, queue_depth=0)
        with pytest.raises(ConfigError):
            _serve_cfg(cfg, kv_token_budget=3)

    def test_cli_fleet_path(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "--config", "tiny", "--ep", "2", "--requests", "4",
            "--max-new", "3", "--prompt-len", "4", "--replicas", "2",
            "--mtbf", "0.01", "--backoff-base", "0.05",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet: 4 requests over 2 replicas" in out
        assert "goodput" in out

    def test_fleet_never_loses_under_deadlocked_replica(self, cfg):
        """The fleet treats any modelled ReproError as a crash; a plain
        FaultInjected killer at op 0 is the degenerate case."""
        scfg = _serve_cfg(cfg, num_requests=4)
        with pytest.raises(ReproError):
            run_serving(scfg, faults=FaultPlan().kill_rank(0, at_op=0))
