"""Property-based tests of the performance model's sanity invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t, tiny_config
from repro.network import sunway_network
from repro.perf import ParallelPlan, StepModel, node_memory, step_flops

CFG = bagualu_14_5t()
MACHINE = sunway_machine(96_000)
NET = sunway_network(96_000)
SM = StepModel(CFG, MACHINE, NET)

micro_batches = st.sampled_from([1, 2, 4, 8, 16])
node_counts = st.sampled_from([256, 1024, 4096, 16384, 96_000])


def plan(nodes=96_000, mb=1, **kw):
    return ParallelPlan(num_nodes=nodes, ep_size=nodes, micro_batch=mb,
                        seq_len=2048, **kw)


@given(micro_batches)
@settings(max_examples=10, deadline=None)
def test_achieved_never_exceeds_peak(mb):
    achieved = SM.achieved_flops(plan(mb=mb))
    assert achieved <= MACHINE.peak_flops(CFG.dtype)


@given(micro_batches)
@settings(max_examples=10, deadline=None)
def test_step_time_monotone_in_batch(mb):
    t1 = SM.step_time(plan(mb=mb))
    t2 = SM.step_time(plan(mb=mb * 2))
    assert t2 > t1


@given(node_counts)
@settings(max_examples=10, deadline=None)
def test_throughput_monotone_in_nodes(nodes):
    sm = StepModel(CFG, MACHINE.with_nodes(nodes), sunway_network(nodes))
    small = sm.tokens_per_second(plan(nodes=nodes, mb=4))
    if nodes < 96_000:
        bigger = 4 * nodes
        sm2 = StepModel(CFG, MACHINE.with_nodes(bigger), sunway_network(bigger))
        assert sm2.tokens_per_second(plan(nodes=bigger, mb=4)) > small


@given(micro_batches)
@settings(max_examples=10, deadline=None)
def test_efficiency_monotone_in_batch(mb):
    """Bigger micro-batches amortize communication: higher sustained FLOPs."""
    a = SM.achieved_flops(plan(mb=mb))
    b = SM.achieved_flops(plan(mb=mb * 2))
    assert b >= a * 0.999


@given(node_counts)
@settings(max_examples=10, deadline=None)
def test_memory_params_decrease_with_ep(nodes):
    instances = CFG.num_moe_layers * CFG.num_experts
    small_ep = min(nodes // 2 or 1, instances)
    # pick divisors of nodes
    ep_small = 1
    for cand in range(small_ep, 0, -1):
        if nodes % cand == 0 and cand <= instances:
            ep_small = cand
            break
    ep_big = 1
    for cand in range(min(nodes, instances), 0, -1):
        if nodes % cand == 0:
            ep_big = cand
            break
    if ep_big <= ep_small:
        return
    p_small = ParallelPlan(num_nodes=nodes, ep_size=ep_small, micro_batch=1, seq_len=2048)
    p_big = ParallelPlan(num_nodes=nodes, ep_size=ep_big, micro_batch=1, seq_len=2048)
    assert node_memory(CFG, p_big).expert_params <= node_memory(CFG, p_small).expert_params


@given(st.integers(min_value=1, max_value=1_000_000))
@settings(max_examples=20, deadline=None)
def test_step_flops_additive(tokens):
    a = step_flops(CFG, tokens)
    b = step_flops(CFG, tokens * 2)
    assert b == pytest.approx(2 * a, rel=1e-12)


@given(micro_batches, st.floats(min_value=1.0, max_value=3.0))
@settings(max_examples=15, deadline=None)
def test_imbalance_monotone(mb, imbalance):
    base = SM.step_time(plan(mb=mb))
    skew = SM.step_time(plan(mb=mb, load_imbalance=imbalance))
    assert skew >= base


def test_tiny_config_plan_sane():
    cfg = tiny_config()
    sm = StepModel(cfg, MACHINE.with_nodes(8), sunway_network(8))
    p = ParallelPlan(num_nodes=8, ep_size=8, micro_batch=1, seq_len=16)
    bd = sm.step_breakdown(p)
    assert bd.total > 0
    assert sm.achieved_flops(p) > 0
