"""Serving stack: KV cache, scheduler, engine, and the generate() rebase.

The load-bearing guarantees:

* cached decoding is *numerically equivalent* to the uncached forward
  (greedy tokens identical, logits to tolerance, rollover exact);
* the continuous-batching engine decodes the same tokens as the
  sequential uncached baseline on the same EP world, and the same tokens
  across EP widths;
* the scheduler's slot accounting (admission order, join-mid-flight,
  SLO eviction) never leaks or double-books a slot.
"""

import numpy as np
import pytest

from repro.errors import CacheOverflow, ConfigError
from repro.models import build_model, generate, tiny_config
from repro.moe import inference_keep_mask
from repro.serve import (
    ContinuousBatchScheduler,
    KVCache,
    Request,
    ServeConfig,
    run_sequential_baseline,
    run_serving,
)
from repro.serve.engine import build_requests
from repro.tensor import no_grad
from repro.train.metrics import LatencyStats


@pytest.fixture(scope="module")
def cfg():
    return tiny_config()


@pytest.fixture(scope="module")
def model(cfg):
    m = build_model(cfg, seed=0)
    m.eval()
    return m


def _rand_prompt(cfg, batch, length, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, cfg.vocab_size, size=(batch, length))


# --------------------------------------------------------------------- #
# KVCache unit behaviour
# --------------------------------------------------------------------- #


class TestKVCache:
    def _cache(self, **kw):
        base = dict(num_layers=2, batch_size=3, n_heads=2, head_dim=4,
                    capacity=16, block_size=4)
        base.update(kw)
        return KVCache(**base)

    def test_paged_growth(self):
        cache = self._cache()
        assert cache.allocated_tokens == 0
        k = np.ones((3, 2, 3, 4), dtype=np.float32)
        cache.layer(0).append(k, k, np.array([3, 1, 2]))
        # 3 tokens needed -> one 4-token block.
        assert cache.allocated_tokens == 4
        assert cache.num_blocks == 1
        cache.commit(np.arange(3), np.array([3, 1, 2]))
        k5 = np.ones((3, 2, 5, 4), dtype=np.float32)
        cache.layer(0).append(k5, k5, np.array([5, 5, 5]))
        # Longest row now 3+5=8 -> two blocks.
        assert cache.allocated_tokens == 8
        assert cache.num_blocks == 2

    def test_append_returns_history_and_ctx(self):
        cache = self._cache(batch_size=2)
        k1 = np.full((2, 2, 2, 4), 1.0, dtype=np.float32)
        k_all, v_all, ctx = cache.layer(1).append(k1, 2 * k1, np.array([2, 1]))
        assert ctx.tolist() == [0, 0]
        assert k_all.shape == (2, 2, 2, 4)
        cache.commit(np.arange(2), np.array([2, 1]))
        assert cache.lengths.tolist() == [2, 1]
        k2 = np.full((2, 2, 1, 4), 3.0, dtype=np.float32)
        k_all, v_all, ctx = cache.layer(1).append(k2, k2, np.array([1, 1]))
        assert ctx.tolist() == [2, 1]
        # Row 0 sees its 2 cached tokens then the new one.
        np.testing.assert_array_equal(k_all[0, :, :2], k1[0])
        np.testing.assert_array_equal(k_all[0, :, 2], k2[0][:, 0])
        np.testing.assert_array_equal(v_all[0, :, :2], 2 * k1[0])

    def test_padding_not_written(self):
        cache = self._cache(batch_size=2)
        k = np.full((2, 2, 3, 4), 7.0, dtype=np.float32)
        cache.layer(0).append(k, k, np.array([3, 1]))
        cache.commit(np.arange(2), np.array([3, 1]))
        # Row 1 committed one token; its stored positions 1.. stay zero.
        assert cache._k[0][1, :, 1:3].sum() == 0.0

    def test_lengths_shared_across_layers(self):
        cache = self._cache()
        k = np.ones((3, 2, 2, 4), dtype=np.float32)
        for layer in range(cache.num_layers):
            _, _, ctx = cache.layer(layer).append(k, k, np.array([2, 2, 2]))
            assert ctx.tolist() == [0, 0, 0]  # commit happens once, after
        cache.commit(np.arange(3), np.full(3, 2))
        assert cache.max_length == 2

    def test_overflow_on_append_and_commit(self):
        cache = self._cache(capacity=4)
        k = np.ones((3, 2, 5, 4), dtype=np.float32)
        with pytest.raises(CacheOverflow):
            cache.layer(0).append(k, k, np.full(3, 5))
        with pytest.raises(CacheOverflow):
            cache.commit(np.arange(3), np.full(3, 5))

    def test_reset_recycles_single_row(self):
        cache = self._cache()
        k = np.ones((3, 2, 2, 4), dtype=np.float32)
        cache.layer(0).append(k, k, np.full(3, 2))
        cache.commit(np.arange(3), np.full(3, 2))
        cache.reset([1])
        assert cache.lengths.tolist() == [2, 0, 2]
        cache.reset()
        assert cache.max_length == 0

    def test_for_model_accepts_config(self, cfg):
        cache = KVCache.for_model(cfg, batch_size=2)
        assert cache.num_layers == cfg.n_layers
        assert cache.capacity == cfg.max_seq_len
        assert cache.n_heads * cache.head_dim == cfg.d_model

    def test_validation(self):
        with pytest.raises(ConfigError):
            self._cache(capacity=0)
        cache = self._cache()
        with pytest.raises(ConfigError):
            cache.layer(99)
        with pytest.raises(ConfigError):
            cache.layer(0, rows=[7])
        k = np.ones((2, 2, 2, 4), dtype=np.float32)
        with pytest.raises(ConfigError):  # valid exceeds t
            cache.layer(0, rows=[0, 1]).append(k, k, np.array([3, 1]))


# --------------------------------------------------------------------- #
# Cached-vs-uncached numerical equivalence
# --------------------------------------------------------------------- #


class TestCacheEquivalence:
    def test_greedy_tokens_identical_batched(self, cfg, model):
        prompt = _rand_prompt(cfg, batch=3, length=5)
        cached = generate(model, prompt, 12, greedy=True, use_cache=True)
        uncached = generate(model, prompt, 12, greedy=True, use_cache=False)
        np.testing.assert_array_equal(cached, uncached)

    def test_greedy_tokens_identical_through_rollover(self, cfg, model):
        # prompt 8 + 30 new crosses max_seq_len=32: the window slides and
        # the cached path must re-prefill to stay exact.
        assert 8 + 30 > cfg.max_seq_len
        prompt = _rand_prompt(cfg, batch=2, length=8, seed=3)
        cached = generate(model, prompt, 30, greedy=True, use_cache=True)
        uncached = generate(model, prompt, 30, greedy=True, use_cache=False)
        np.testing.assert_array_equal(cached, uncached)

    def test_sampled_tokens_identical(self, cfg, model):
        prompt = _rand_prompt(cfg, batch=2, length=4, seed=1)
        a = generate(model, prompt, 10, rng=np.random.default_rng(7),
                     temperature=0.8, top_k=20, use_cache=True)
        b = generate(model, prompt, 10, rng=np.random.default_rng(7),
                     temperature=0.8, top_k=20, use_cache=False)
        np.testing.assert_array_equal(a, b)

    def test_prefill_logits_bitwise_equal(self, cfg, model):
        toks = _rand_prompt(cfg, batch=2, length=6)
        with no_grad():
            full = model(toks).data
            cache = KVCache.for_model(model, batch_size=2)
            cached = model(toks, kv_cache=cache).data
        np.testing.assert_array_equal(cached, full)

    def test_incremental_logits_close(self, cfg, model):
        toks = _rand_prompt(cfg, batch=2, length=6)
        with no_grad():
            full = model(toks).data[:, -1, :]
            cache = KVCache.for_model(model, batch_size=2)
            model(toks[:, :-1], kv_cache=cache)
            step = model(toks[:, -1:], kv_cache=cache).data[:, -1, :]
        np.testing.assert_allclose(step, full, rtol=1e-5, atol=1e-6)

    def test_ragged_rows_close_to_solo(self, cfg, model):
        """A ragged batch row matches its solo forward to tolerance."""
        toks = _rand_prompt(cfg, batch=2, length=6)
        with no_grad():
            cache = KVCache.for_model(model, batch_size=2)
            # Prefill row 0 with 6 tokens, row 1 with 4 (ragged).
            ragged = model(
                toks, kv_cache=cache, valid=np.array([6, 4])
            ).data
            solo = model(toks[1:, :4]).data
        np.testing.assert_allclose(ragged[1, :4], solo[0], rtol=1e-5, atol=1e-6)
        assert cache.lengths.tolist() == [6, 4]

    def test_cached_forward_requires_no_grad(self, cfg, model):
        cache = KVCache.for_model(model, batch_size=1)
        with pytest.raises(ConfigError):
            model(_rand_prompt(cfg, 1, 4), kv_cache=cache)

    def test_cached_forward_rejects_window_overrun(self, cfg, model):
        cache = KVCache.for_model(model, batch_size=1)
        toks = _rand_prompt(cfg, 1, cfg.max_seq_len)
        with no_grad():
            model(toks, kv_cache=cache)
            with pytest.raises(ConfigError):
                model(toks[:, :1], kv_cache=cache)


class TestGenerateFixes:
    def test_float_prompt_rejected(self, model):
        with pytest.raises(ConfigError):
            generate(model, np.zeros((1, 3), dtype=np.float32), 2)

    def test_greedy_skips_rng_construction(self, cfg, model, monkeypatch):
        prompt = _rand_prompt(cfg, 1, 3)

        def boom(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("default_rng constructed on greedy path")

        monkeypatch.setattr(np.random, "default_rng", boom)
        out = generate(model, prompt, 2, greedy=True)
        assert out.shape == (1, 5)

    def test_sampling_defaults_rng_when_missing(self, cfg, model):
        out = generate(model, _rand_prompt(cfg, 1, 3), 2, greedy=False)
        assert out.shape == (1, 5)


# --------------------------------------------------------------------- #
# Inference-side expert capacity
# --------------------------------------------------------------------- #


class TestInferenceKeepMask:
    def test_caps_each_expert(self):
        idx = np.array([[0], [0], [0], [1]])
        keep = inference_keep_mask(idx, num_experts=2, max_per_expert=2)
        assert keep.tolist() == [[True], [True], [False], [True]]

    def test_stable_earlier_rows_win(self):
        idx = np.array([[3], [3], [3]])
        keep = inference_keep_mask(idx, num_experts=4, max_per_expert=1)
        assert keep.tolist() == [[True], [False], [False]]

    def test_no_drops_under_cap(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 4, size=(6, 2))
        keep = inference_keep_mask(idx, num_experts=4, max_per_expert=100)
        assert keep.all()


# --------------------------------------------------------------------- #
# Scheduler slot accounting
# --------------------------------------------------------------------- #


def _req(rid, arrival=0.0, slo=None, max_new=4):
    return Request(rid=rid, prompt=np.array([1, 2, 3]),
                   max_new_tokens=max_new, arrival=arrival, slo=slo)


class TestScheduler:
    def test_admits_in_arrival_order_up_to_batch(self):
        s = ContinuousBatchScheduler(max_batch_size=2)
        for r in (_req(0, 0.3), _req(1, 0.1), _req(2, 0.2)):
            s.submit(r)
        admitted = s.admit(now=1.0)
        assert [r.rid for r in admitted] == [1, 2]
        assert {r.slot for r in admitted} == {0, 1}
        assert [r.rid for r in s.waiting] == [0]

    def test_future_arrivals_wait(self):
        s = ContinuousBatchScheduler(max_batch_size=4)
        s.submit(_req(0, arrival=5.0))
        assert s.admit(now=1.0) == []
        assert s.next_arrival == 5.0
        assert s.has_work

    def test_join_mid_flight_reuses_freed_slot(self):
        s = ContinuousBatchScheduler(max_batch_size=1)
        s.submit(_req(0))
        s.submit(_req(1))
        (first,) = s.admit(now=0.0)
        assert s.admit(now=0.0) == []  # batch full
        s.finish(first, now=2.0)
        (second,) = s.admit(now=2.0)
        assert second.rid == 1 and second.slot == first.slot is not None or True
        assert second.slot == 0
        assert first.state == "done" and first.t_finished == 2.0

    def test_slo_evicts_active_and_waiting(self):
        s = ContinuousBatchScheduler(max_batch_size=1)
        s.submit(_req(0, arrival=0.0, slo=1.0))
        s.submit(_req(1, arrival=0.0, slo=1.0))
        s.admit(now=0.0)
        evicted = s.evict_expired(now=2.0)
        assert sorted(r.rid for r in evicted) == [0, 1]
        assert all(r.state == "evicted" for r in evicted)
        # The active request's slot was released.
        assert s.admit(now=2.0) == [] and not s.has_work

    def test_finish_requires_active(self):
        s = ContinuousBatchScheduler(max_batch_size=1)
        req = _req(0)
        with pytest.raises(ConfigError):
            s.finish(req, now=0.0)

    def test_request_validation(self):
        with pytest.raises(ConfigError):
            Request(rid=0, prompt=np.zeros((2, 2)), max_new_tokens=1)
        with pytest.raises(ConfigError):
            _req(0, slo=-1.0)
        with pytest.raises(ConfigError):
            _req(0, max_new=0)

    def test_record_carries_latency_fields(self):
        req = _req(0, arrival=1.0)
        req.t_first_token = 1.5
        req.t_finished = 3.0
        req.generated = [4, 5]
        req.state = "done"
        rec = req.record()
        assert rec["ttft"] == 0.5 and rec["latency"] == 2.0
        assert rec["tokens"] == [4, 5]


# --------------------------------------------------------------------- #
# Engine end-to-end on the virtual clock
# --------------------------------------------------------------------- #


def _serve_cfg(cfg, **kw):
    base = dict(model=cfg, ep_size=2, num_requests=6, prompt_len=4,
                prompt_len_max=7, max_new_tokens=5, max_batch_size=3, seed=0)
    base.update(kw)
    return ServeConfig(**base)


def _tokens_by_rid(result):
    return {r["rid"]: r["tokens"] for r in result.requests}


class TestEngine:
    def test_continuous_matches_sequential_tokens(self, cfg):
        scfg = _serve_cfg(cfg)
        cont = run_serving(scfg)
        base = run_sequential_baseline(scfg)
        assert _tokens_by_rid(cont) == _tokens_by_rid(base)
        assert cont.completed == base.completed == scfg.num_requests

    def test_tokens_invariant_across_ep_widths(self, cfg):
        one = run_serving(_serve_cfg(cfg, ep_size=1))
        two = run_serving(_serve_cfg(cfg, ep_size=2))
        assert _tokens_by_rid(one) == _tokens_by_rid(two)

    def test_latency_accounting(self, cfg):
        res = run_serving(_serve_cfg(cfg))
        assert res.simulated_time > 0
        assert res.throughput > 0
        assert res.decode_tokens == res.config.num_requests * res.config.max_new_tokens
        assert res.ttft.count == res.completed
        assert res.token_latency.count == res.decode_tokens
        assert res.ttft.percentile(95) >= res.ttft.percentile(50) > 0
        rec = res.metrics_record()
        assert rec["completed"] == res.completed
        assert rec["ttft_p95"] >= rec["ttft_p50"]

    def test_tight_slo_evicts(self, cfg):
        res = run_serving(_serve_cfg(cfg, slo_ms=1e-3, arrival_rate=1e4))
        assert res.evicted > 0
        assert res.completed + res.evicted == res.config.num_requests

    def test_poisson_arrivals_are_ordered_and_deterministic(self, cfg):
        scfg = _serve_cfg(cfg, arrival_rate=100.0, num_requests=8)
        a = build_requests(scfg)
        b = build_requests(scfg)
        arrivals = [r.arrival for r in a]
        assert arrivals == sorted(arrivals) and arrivals[-1] > 0
        assert all(
            np.array_equal(x.prompt, y.prompt) and x.arrival == y.arrival
            for x, y in zip(a, b)
        )

    def test_config_validation(self, cfg):
        with pytest.raises(ConfigError):  # ep must divide experts
            _serve_cfg(cfg, ep_size=3)
        with pytest.raises(ConfigError):  # continuous requires the cache
            _serve_cfg(cfg, use_cache=False)
        with pytest.raises(ConfigError):  # must fit the window
            _serve_cfg(cfg, prompt_len=30, prompt_len_max=30,
                       max_new_tokens=10)
        with pytest.raises(ConfigError):
            _serve_cfg(cfg, batching="magic")

    def test_sampling_mode_runs(self, cfg):
        res = run_serving(_serve_cfg(cfg, greedy=False, num_requests=3,
                                     temperature=0.9))
        assert res.completed == 3

    def test_expert_capacity_plumbs_through(self, cfg):
        res = run_serving(_serve_cfg(cfg, expert_capacity=1, num_requests=3))
        assert res.completed == 3


class TestLatencyStats:
    def test_percentiles(self):
        s = LatencyStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4 and s.mean == 2.5
        assert s.percentile(50) == 2.5
        assert s.percentile(100) == 4.0

    def test_empty_and_invalid(self):
        s = LatencyStats()
        assert s.summary() == {"count": 0}
        # Empty collectors report 0.0 instead of raising, so report
        # generation survives runs with zero completions.
        assert s.percentile(50) == 0.0
        assert s.percentile(95) == 0.0
        with pytest.raises(ConfigError):
            s.add(-1.0)
        s.add(1.0)
        with pytest.raises(ConfigError):
            s.percentile(101)


def test_cli_serve_smoke(capsys):
    from repro.cli import main

    rc = main([
        "serve", "--config", "tiny", "--ep", "1", "--requests", "2",
        "--batch", "2", "--max-new", "3", "--prompt-len", "4",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "throughput" in out and "completed / evicted: 2 / 0" in out
