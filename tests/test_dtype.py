"""Emulated dtype behaviour: rounding grids, overflow, promotion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DtypeError
from repro.tensor import DTYPES, as_dtype, itemsize, promote, quantize, storage_dtype

floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32)


class TestRegistry:
    def test_known_dtypes(self):
        assert set(DTYPES) == {"fp64", "fp32", "fp16", "bf16"}

    def test_as_dtype_idempotent(self):
        spec = as_dtype("fp16")
        assert as_dtype(spec) is spec

    def test_unknown_dtype(self):
        with pytest.raises(DtypeError):
            as_dtype("int4")

    def test_itemsize_on_modelled_machine(self):
        assert itemsize("fp64") == 8
        assert itemsize("fp32") == 4
        assert itemsize("fp16") == 2
        assert itemsize("bf16") == 2

    def test_storage_is_at_least_fp32(self):
        assert storage_dtype("fp16") == np.float32
        assert storage_dtype("bf16") == np.float32
        assert storage_dtype("fp64") == np.float64


class TestQuantizeFp16:
    def test_exact_values_preserved(self):
        x = np.array([0.0, 1.0, -2.5, 1024.0], dtype=np.float32)
        assert np.array_equal(quantize(x, "fp16"), x)

    def test_rounding_to_fp16_grid(self):
        # 1 + 2^-11 is exactly representable in fp16; 1 + 2^-12 is not.
        x = np.array([1.0 + 2**-12], dtype=np.float32)
        q = quantize(x, "fp16")
        assert q[0] in (1.0, 1.0 + 2**-11)

    def test_overflow_to_inf(self):
        q = quantize(np.array([1e5, -1e5]), "fp16")
        assert np.isinf(q).all()
        assert q[0] > 0 > q[1]

    def test_underflow_flushes(self):
        q = quantize(np.array([1e-10]), "fp16")
        assert q[0] == 0.0

    def test_nan_preserved(self):
        assert np.isnan(quantize(np.array([np.nan]), "fp16"))[0]


class TestQuantizeBf16:
    def test_exact_values_preserved(self):
        x = np.array([0.0, 1.0, -2.0, 0.5], dtype=np.float32)
        assert np.array_equal(quantize(x, "bf16"), x)

    def test_mantissa_truncation(self):
        # bf16 keeps 8 mantissa bits: 1 + 2^-8 representable, 1 + 2^-9 not.
        x = np.array([1.0 + 2**-9], dtype=np.float32)
        q = quantize(x, "bf16")
        assert q[0] in (1.0, 1.0 + 2**-8)

    def test_large_dynamic_range_survives(self):
        # The whole point of bf16: 1e38 does not overflow.
        q = quantize(np.array([1e38]), "bf16")
        assert np.isfinite(q[0])

    def test_nan_preserved(self):
        assert np.isnan(quantize(np.array([np.nan]), "bf16"))[0]

    def test_inf_preserved(self):
        q = quantize(np.array([np.inf, -np.inf]), "bf16")
        assert np.isinf(q).all()

    @given(floats)
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, v):
        once = quantize(np.array([v], dtype=np.float32), "bf16")
        twice = quantize(once, "bf16")
        assert np.array_equal(once, twice) or (np.isnan(once).any() and np.isnan(twice).any())

    @given(floats)
    @settings(max_examples=100, deadline=None)
    def test_relative_error_bounded(self, v):
        q = float(quantize(np.array([v], dtype=np.float32), "bf16")[0])
        # The relative-error bound holds for normal numbers only
        # (subnormals lose precision absolutely, as in real bfloat16).
        if abs(v) >= np.finfo(np.float32).tiny:
            assert abs(q - v) <= abs(v) * 2**-8


class TestQuantizeRoundTrips:
    @given(floats)
    @settings(max_examples=100, deadline=None)
    def test_fp32_identity(self, v):
        x = np.array([v], dtype=np.float32)
        assert np.array_equal(quantize(x, "fp32"), x)

    @given(floats)
    @settings(max_examples=100, deadline=None)
    def test_fp16_idempotent(self, v):
        once = quantize(np.array([v], dtype=np.float32), "fp16")
        twice = quantize(once, "fp16")
        assert np.array_equal(once, twice)

    @given(floats)
    @settings(max_examples=50, deadline=None)
    def test_fp16_monotone(self, v):
        a = quantize(np.array([v], dtype=np.float32), "fp16")[0]
        b = quantize(np.array([v + abs(v) * 0.1 + 1.0], dtype=np.float32), "fp16")[0]
        assert a <= b


class TestPromotion:
    def test_fp32_beats_fp16(self):
        assert promote("fp16", "fp32").name == "fp32"

    def test_fp64_beats_everything(self):
        for d in ("fp32", "fp16", "bf16"):
            assert promote(d, "fp64").name == "fp64"

    def test_bf16_beats_fp16(self):
        assert promote("fp16", "bf16").name == "bf16"

    def test_same_dtype(self):
        assert promote("fp16", "fp16").name == "fp16"
