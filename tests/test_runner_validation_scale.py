"""Runner config validation and larger-world robustness checks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import tiny_config
from repro.network import sunway_network
from repro.parallel import TrainingRunConfig, run_distributed_training
from repro.simmpi import run_spmd


class TestTrainingRunConfigValidation:
    def test_ep_must_divide_world(self):
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=tiny_config(), world_size=6, ep_size=4)

    def test_positive_sizes(self):
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=tiny_config(), world_size=0, ep_size=1)
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=tiny_config(), world_size=2, ep_size=1, num_steps=0)

    def test_result_meta_propagates_settings(self):
        cfg = TrainingRunConfig(
            model=tiny_config(num_experts=4), world_size=4, ep_size=2,
            num_steps=2, batch_size=2, seq_len=8,
            alltoall_algorithm="hierarchical", mixed_precision=True,
        )
        res = run_distributed_training(cfg)
        assert res.meta["ep_size"] == 2
        assert res.meta["mixed_precision"] is True
        assert res.meta["alltoall"] == "hierarchical"

    def test_compute_time_flag_off_means_comm_only(self):
        cfg = tiny_config(num_experts=4)
        base = TrainingRunConfig(model=cfg, world_size=2, ep_size=2,
                                 num_steps=1, batch_size=2, seq_len=8,
                                 model_compute_time=False)
        res = run_distributed_training(base)
        # All virtual time must come from communication ops.
        assert res.simulated_time > 0


class TestLargerWorlds:
    def test_collectives_at_32_ranks(self):
        """The thread-per-rank engine stays correct at 32 ranks."""

        def program(comm):
            total = comm.allreduce(comm.rank)
            gathered = comm.allgather(comm.rank % 4)
            sub = comm.Split(color=comm.rank % 4)
            return total, len(gathered), sub.size

        res = run_spmd(program, 32, network=sunway_network(32, supernode_size=8),
                       timeout=120)
        expected_total = 31 * 32 // 2
        for total, g, sub in res.returns:
            assert total == expected_total
            assert g == 32
            assert sub == 8

    def test_alltoall_at_32_ranks(self):
        def program(comm):
            got = comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])
            return got[5]

        res = run_spmd(program, 32, timeout=120)
        for r, v in enumerate(res.returns):
            assert v == 5 * 100 + r

    def test_training_step_at_24_ranks(self):
        cfg = TrainingRunConfig(
            model=tiny_config(num_experts=8), world_size=24, ep_size=8,
            num_steps=1, batch_size=1, seq_len=8, timeout=600,
        )
        res = run_distributed_training(cfg, network=sunway_network(24, supernode_size=8))
        assert np.isfinite(res.losses[0])
        assert res.simulated_time > 0
