"""MoDa group construction and data-parallel gradient sync."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, ConfigError
from repro.models import Linear, Parameter
from repro.parallel import (
    MoDaGrid,
    allreduce_gradients,
    broadcast_parameters,
    build_groups,
    flatten_grads,
    unflatten_grads,
)
from repro.simmpi import run_spmd


class TestMoDaGrid:
    def test_basic_layout(self):
        grid = MoDaGrid(world_size=8, ep_size=4)
        assert grid.num_ep_groups == 2
        assert grid.ep_group_of(5) == 1
        assert grid.ep_rank_of(5) == 1

    def test_ep_must_divide_world(self):
        with pytest.raises(ConfigError):
            MoDaGrid(world_size=6, ep_size=4)

    def test_local_experts_blocked(self):
        grid = MoDaGrid(world_size=4, ep_size=4)
        assert list(grid.local_experts(8, rank=1)) == [2, 3]

    def test_local_experts_must_divide(self):
        grid = MoDaGrid(world_size=4, ep_size=4)
        with pytest.raises(ConfigError):
            grid.local_experts(6, rank=0)

    def test_degenerate_grids(self):
        assert MoDaGrid(1, 1).num_ep_groups == 1
        assert MoDaGrid(8, 1).num_ep_groups == 8
        assert MoDaGrid(8, 8).num_ep_groups == 1


class TestBuildGroups:
    def test_group_shapes(self):
        def program(comm):
            g = build_groups(comm, ep_size=2)
            return (g.ep.size, g.edp.size, g.ep_rank, g.edp_rank)

        res = run_spmd(program, 6)
        for r, (ep_size, edp_size, ep_rank, edp_rank) in enumerate(res.returns):
            assert ep_size == 2
            assert edp_size == 3
            assert ep_rank == r % 2
            assert edp_rank == r // 2

    def test_ep_group_members_consecutive(self):
        def program(comm):
            g = build_groups(comm, ep_size=4)
            return g.ep.members

        res = run_spmd(program, 8)
        assert res.returns[0] == (0, 1, 2, 3)
        assert res.returns[5] == (4, 5, 6, 7)

    def test_edp_group_members_strided(self):
        def program(comm):
            g = build_groups(comm, ep_size=4)
            return g.edp.members

        res = run_spmd(program, 8)
        assert res.returns[1] == (1, 5)

    def test_world_is_original_comm(self):
        def program(comm):
            g = build_groups(comm, ep_size=1)
            return g.world is comm

        assert all(run_spmd(program, 4).returns)


class TestGradFlattening:
    def _params(self):
        a = Parameter(np.zeros((2, 3)))
        b = Parameter(np.zeros(4))
        return [a, b]

    def test_roundtrip(self):
        params = self._params()
        params[0].grad = np.arange(6, dtype=np.float32).reshape(2, 3)
        params[1].grad = np.arange(4, dtype=np.float32)
        flat = flatten_grads(params)
        assert flat.shape == (10,)
        params[0].grad = None
        params[1].grad = None
        unflatten_grads(params, flat)
        assert np.allclose(params[0].grad, np.arange(6).reshape(2, 3))
        assert np.allclose(params[1].grad, np.arange(4))

    def test_missing_grads_become_zero(self):
        params = self._params()
        params[0].grad = np.ones((2, 3), dtype=np.float32)
        flat = flatten_grads(params)
        assert np.allclose(flat[6:], 0.0)

    def test_wrong_size_rejected(self):
        with pytest.raises(CommunicatorError):
            unflatten_grads(self._params(), np.zeros(3, dtype=np.float32))


class TestAllreduceGradients:
    def test_averages_across_ranks(self):
        def program(comm):
            p = Parameter(np.zeros(4))
            p.grad = np.full(4, float(comm.rank), dtype=np.float32)
            nbytes = allreduce_gradients(comm, [p], average=True)
            return p.grad.copy(), nbytes

        res = run_spmd(program, 4)
        expected = (0 + 1 + 2 + 3) / 4
        for grad, nbytes in res.returns:
            assert np.allclose(grad, expected)
            assert nbytes == 16

    def test_sum_mode(self):
        def program(comm):
            p = Parameter(np.zeros(2))
            p.grad = np.ones(2, dtype=np.float32)
            allreduce_gradients(comm, [p], average=False)
            return p.grad.copy()

        res = run_spmd(program, 3)
        assert np.allclose(res.returns[0], 3.0)

    def test_single_rank_noop(self):
        def program(comm):
            p = Parameter(np.zeros(2))
            p.grad = np.ones(2, dtype=np.float32)
            return allreduce_gradients(comm, [p])

        assert run_spmd(program, 1).returns == [0]

    def test_grads_quantized_to_param_dtype(self):
        def program(comm):
            p = Parameter(np.zeros(2), dtype="fp16")
            p.grad = np.full(2, 1.0 + 2**-12, dtype=np.float32)
            allreduce_gradients(comm, [p], average=True)
            return p.grad.copy()

        res = run_spmd(program, 2)
        from repro.tensor import quantize

        assert np.array_equal(res.returns[0], quantize(res.returns[0], "fp16"))


class TestBroadcastParameters:
    def test_makes_replicas_identical(self):
        def program(comm):
            rng = np.random.default_rng(comm.rank)  # deliberately divergent
            lin = Linear(3, 3, rng)
            broadcast_parameters(comm, lin.parameters(), root=0)
            return lin.weight.data.copy()

        res = run_spmd(program, 4)
        for w in res.returns[1:]:
            assert np.array_equal(w, res.returns[0])

    def test_root_value_wins(self):
        def program(comm):
            p = Parameter(np.full(2, float(comm.rank)))
            broadcast_parameters(comm, [p], root=2)
            return p.data.copy()

        res = run_spmd(program, 4)
        assert all(np.allclose(w, 2.0) for w in res.returns)

    def test_empty_param_list(self):
        def program(comm):
            broadcast_parameters(comm, [], root=0)
            return True

        assert all(run_spmd(program, 2).returns)
