"""Tests for repro.utils: units, seeding, integer math."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.utils import (
    ceil_div,
    derive_seed,
    format_bytes,
    format_count,
    format_flops,
    format_time,
    is_power_of_two,
    next_power_of_two,
    parse_bytes,
    prod,
    rng_for_rank,
)


class TestFormatBytes:
    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(1536) == "1.50 KiB"

    def test_mib(self):
        assert format_bytes(5 * 2**20) == "5.00 MiB"

    def test_gib(self):
        assert format_bytes(3.25 * 2**30) == "3.25 GiB"

    def test_negative(self):
        assert format_bytes(-2048) == "-2.00 KiB"

    def test_huge_value_uses_largest_unit(self):
        assert "EiB" in format_bytes(2**70)


class TestFormatCount:
    def test_small_integer(self):
        assert format_count(42) == "42"

    def test_thousands(self):
        assert format_count(37_440_000) == "37.44M"

    def test_trillions(self):
        assert format_count(14.5e12) == "14.50T"

    def test_flops(self):
        assert format_flops(1.18e18) == "1.18EFLOPS"


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0 s"

    def test_nanoseconds(self):
        assert format_time(3.2e-9) == "3.20 ns"

    def test_microseconds(self):
        assert format_time(4.5e-6) == "4.50 us"

    def test_milliseconds(self):
        assert format_time(0.012) == "12.00 ms"

    def test_seconds(self):
        assert format_time(1.5) == "1.50 s"

    def test_minutes(self):
        assert format_time(600) == "10.00 min"

    def test_hours(self):
        assert format_time(7200) == "2.00 h"


class TestParseBytes:
    def test_plain_number(self):
        assert parse_bytes("512") == 512

    def test_binary_units(self):
        assert parse_bytes("4 MiB") == 4 * 2**20

    def test_si_units(self):
        assert parse_bytes("1gb") == 10**9

    def test_fractional(self):
        assert parse_bytes("1.5 KiB") == 1536

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            parse_bytes("")

    def test_unknown_suffix_raises(self):
        with pytest.raises(ConfigError):
            parse_bytes("5 parsecs")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_plain(self, n):
        assert parse_bytes(str(n)) == n


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_streams_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_rank_rngs_are_independent(self):
        a = rng_for_rank(0, 0).random(8)
        b = rng_for_rank(0, 1).random(8)
        assert not np.allclose(a, b)

    def test_rank_rngs_are_reproducible(self):
        a = rng_for_rank(7, 3).random(8)
        b = rng_for_rank(7, 3).random(8)
        assert np.allclose(a, b)

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=10))
    def test_derive_seed_in_64bit_range(self, seed, label):
        s = derive_seed(seed, label)
        assert 0 <= s < 2**64


class TestMathx:
    def test_ceil_div_exact(self):
        assert ceil_div(8, 4) == 2

    def test_ceil_div_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_ceil_div_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
        assert not is_power_of_two(-8)

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(64) == 64

    def test_prod(self):
        assert prod([]) == 1
        assert prod([2, 3, 4]) == 24

    @given(st.integers(min_value=1, max_value=10**9))
    def test_next_power_of_two_bounds(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1

    @given(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_ceil_div_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b
