"""Communicator splitting, virtual clocks, and fault injection."""

import numpy as np
import pytest

from repro.errors import DeadlockError, FaultInjected
from repro.network import flat_network, sunway_network
from repro.simmpi import FaultPlan, MessageFault, run_spmd


class TestSplit:
    def test_split_even_odd(self):
        def program(comm):
            sub = comm.Split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allreduce(comm.rank))

        res = run_spmd(program, 6)
        # Even ranks 0,2,4 -> sum 6; odd 1,3,5 -> sum 9.
        assert res.returns[0] == (0, 3, 6)
        assert res.returns[1] == (0, 3, 9)
        assert res.returns[4] == (2, 3, 6)

    def test_split_with_key_reorders(self):
        def program(comm):
            sub = comm.Split(color=0, key=-comm.rank)  # reversed order
            return sub.rank

        res = run_spmd(program, 4)
        assert res.returns == [3, 2, 1, 0]

    def test_split_opt_out_with_none(self):
        def program(comm):
            sub = comm.Split(color=0 if comm.rank < 2 else None)
            if sub is None:
                return "out"
            return sub.size

        res = run_spmd(program, 4)
        assert res.returns == [2, 2, "out", "out"]

    def test_nested_split(self):
        def program(comm):
            half = comm.Split(color=comm.rank // 4)
            quarter = half.Split(color=half.rank // 2)
            return (half.size, quarter.size, quarter.allreduce(comm.rank))

        res = run_spmd(program, 8)
        assert res.returns[0] == (4, 2, 0 + 1)
        assert res.returns[7] == (4, 2, 6 + 7)

    def test_subcomm_p2p_uses_group_ranks(self):
        def program(comm):
            sub = comm.Split(color=comm.rank % 2)
            if sub.size == 3:
                if sub.rank == 0:
                    sub.send("hi", dest=2)
                elif sub.rank == 2:
                    return sub.recv(source=0)
            return None

        res = run_spmd(program, 6)
        assert res.returns[4] == "hi"  # world rank 4 = even-group rank 2

    def test_dup_gives_independent_stream(self):
        def program(comm):
            dup = comm.Dup()
            a = comm.allreduce(1)
            b = dup.allreduce(2)
            return (a, b)

        res = run_spmd(program, 3)
        assert res.returns == [(3, 6)] * 3

    def test_world_rank_mapping(self):
        def program(comm):
            sub = comm.Split(color=comm.rank // 2)
            return (sub.world_rank, tuple(sub.members))

        res = run_spmd(program, 4)
        assert res.returns[3] == (3, (2, 3))


class TestVirtualClock:
    def test_no_network_no_time(self):
        def program(comm):
            comm.allreduce(np.zeros(1000))
            comm.barrier()

        res = run_spmd(program, 4)
        assert res.simulated_time == 0.0

    def test_advance_accumulates(self):
        def program(comm):
            comm.advance(1.5)
            comm.advance(0.5)
            return comm.clock

        res = run_spmd(program, 2)
        assert res.returns == [2.0, 2.0]
        assert res.simulated_time == 2.0

    def test_collective_synchronizes_clocks(self):
        def program(comm):
            comm.advance(float(comm.rank))  # rank 3 is slowest
            comm.barrier()
            return comm.clock

        res = run_spmd(program, 4, network=flat_network(4))
        assert all(c >= 3.0 for c in res.returns)

    def test_bigger_payload_takes_longer(self):
        def make(n):
            def program(comm):
                comm.allreduce(np.zeros(n, dtype=np.float32))

            return program

        small = run_spmd(make(100), 4, network=flat_network(4)).simulated_time
        big = run_spmd(make(1_000_000), 4, network=flat_network(4)).simulated_time
        assert big > small > 0

    def test_p2p_transit_time(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1_000_000, dtype=np.float64), dest=1)
                return comm.clock
            comm.recv(source=0)
            return comm.clock

        res = run_spmd(program, 2, network=flat_network(2, bandwidth=1e9))
        # 8 MB at 1 GB/s = 8 ms transit, receiver waits for it.
        assert res.returns[1] >= 8e-3
        assert res.returns[0] < res.returns[1]

    def test_forced_algorithms_change_time_not_result(self):
        def make(algorithm):
            def program(comm):
                return comm.allreduce(np.ones(4096, dtype=np.float32), algorithm=algorithm), comm.clock

            return program

        net = sunway_network(8)
        ring = run_spmd(make("ring"), 8, network=net)
        tree = run_spmd(make("tree"), 8, network=net)
        assert np.allclose(ring.returns[0][0], tree.returns[0][0])
        assert ring.simulated_time != tree.simulated_time

    def test_traffic_stats_counted(self):
        def program(comm):
            comm.allreduce(np.zeros(10, dtype=np.float64))
            if comm.rank == 0:
                comm.send(b"xxxx", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        res = run_spmd(program, 2, network=flat_network(2))
        s = res.stats
        assert s.collective_calls["allreduce"] == 1
        assert s.p2p_messages == 1
        assert s.p2p_bytes == 4
        assert s.total_bytes > 0


class TestFaults:
    def test_dropped_message_deadlocks_receiver(self):
        plan = FaultPlan().add_message_fault(MessageFault(src=0, dst=1, drop=True))

        def program(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1)
            else:
                comm.recv(source=0)

        with pytest.raises(DeadlockError):
            run_spmd(program, 2, timeout=1.0, faults=plan)
        assert plan is not None

    def test_drop_counted_in_stats(self):
        plan = FaultPlan().add_message_fault(MessageFault(src=0, dst=1, drop=True))

        def program(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1)
            comm.barrier()

        res = run_spmd(program, 2, faults=plan)
        assert res.stats.dropped_messages == 1

    def test_delayed_message_arrives_late(self):
        plan = FaultPlan().add_message_fault(MessageFault(src=0, dst=1, delay=5.0))

        def program(comm):
            if comm.rank == 0:
                comm.send("slow", dest=1)
                return None
            comm.recv(source=0)
            return comm.clock

        res = run_spmd(program, 2, network=flat_network(2), faults=plan)
        assert res.returns[1] >= 5.0

    def test_second_message_unaffected(self):
        plan = FaultPlan().add_message_fault(
            MessageFault(src=0, dst=1, match_index=0, drop=True)
        )

        def program(comm):
            if comm.rank == 0:
                comm.send("lost", dest=1, tag=1)
                comm.send("kept", dest=1, tag=2)
                return None
            return comm.recv(source=0, tag=2)

        res = run_spmd(program, 2, faults=plan)
        assert res.returns[1] == "kept"

    def test_kill_rank_raises_fault(self):
        plan = FaultPlan().kill_rank(1, at_op=0)

        def program(comm):
            comm.barrier()

        with pytest.raises(FaultInjected):
            run_spmd(program, 2, faults=plan)

    def test_kill_after_n_ops(self):
        plan = FaultPlan().kill_rank(0, at_op=2)

        def program(comm):
            comm.barrier()  # op 0
            comm.barrier()  # op 1
            comm.barrier()  # op 2 -> rank 0 dies here

        with pytest.raises(FaultInjected):
            run_spmd(program, 2, faults=plan)
