"""Generation API and gradient accumulation."""

import numpy as np
import pytest

from repro.data import Batch, ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.models import build_model, generate, tiny_config
from repro.train import Adam, ConstantLR, SGD, Trainer

RNG = np.random.default_rng(0)
CFG = tiny_config()


class TestGenerate:
    def _model(self):
        return build_model(CFG, seed=1)

    def test_output_shape(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(2, 3))
        out = generate(model, prompt, max_new_tokens=5, rng=np.random.default_rng(0))
        assert out.shape == (2, 8)
        assert np.array_equal(out[:, :3], prompt)

    def test_tokens_in_vocab(self):
        model = self._model()
        out = generate(model, RNG.integers(0, CFG.vocab_size, size=(1, 2)), 10,
                       rng=np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < CFG.vocab_size

    def test_greedy_deterministic(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(1, 4))
        a = generate(model, prompt, 6, greedy=True)
        b = generate(model, prompt, 6, greedy=True)
        assert np.array_equal(a, b)

    def test_sampling_reproducible_with_rng(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(1, 4))
        a = generate(model, prompt, 6, rng=np.random.default_rng(7))
        b = generate(model, prompt, 6, rng=np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_top_k_restricts_support(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(1, 4))
        greedy = generate(model, prompt, 1, greedy=True)
        topk1 = generate(model, prompt, 1, top_k=1, rng=np.random.default_rng(3))
        # top_k=1 sampling must equal the greedy choice.
        assert np.array_equal(greedy, topk1)

    def test_window_clipping_beyond_max_seq_len(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(1, CFG.max_seq_len))
        out = generate(model, prompt, 3, greedy=True)
        assert out.shape[1] == CFG.max_seq_len + 3

    def test_restores_training_mode(self):
        model = self._model().train()
        generate(model, RNG.integers(0, CFG.vocab_size, size=(1, 2)), 1, greedy=True)
        assert model.training

    def test_trained_model_generates_structure(self):
        """After training on predictability=1.0 data, greedy generation
        follows the successor table."""
        cfg = tiny_config()
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=1.0, seed=3)
        model = build_model(cfg, seed=2)
        loader = ShardedLoader(corpus, 8, 16)
        Trainer(model, Adam(model.parameters(), lr=3e-3)).fit(loader, 80)
        start = np.array([[5]])
        out = generate(model, start, 10, greedy=True)[0]
        follows = sum(out[i + 1] == corpus.successor[out[i]] for i in range(len(out) - 1))
        assert follows >= 7  # mostly on the learned rule

    def test_invalid_args(self):
        model = self._model()
        prompt = RNG.integers(0, CFG.vocab_size, size=(1, 2))
        with pytest.raises(ConfigError):
            generate(model, prompt.ravel(), 1)
        with pytest.raises(ConfigError):
            generate(model, prompt, 0)
        with pytest.raises(ConfigError):
            generate(model, prompt, 1, temperature=0.0)
        with pytest.raises(ConfigError):
            generate(model, prompt, 1, top_k=0)


class TestGradientAccumulation:
    def _setup(self, seed=4):
        model = build_model(CFG, seed=seed)
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=9)
        return model, corpus

    def test_accumulated_equals_concatenated(self):
        """N accumulated microbatches == one step on the stacked batch.

        aux_weight=0: the MoE balance loss is nonlinear in the batch
        partition, so exact equality only holds for the CE objective (the
        same caveat applies to per-rank aux in data parallelism).
        """
        exact_cfg = tiny_config(aux_weight=0.0)
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=9)
        model_a = build_model(exact_cfg, seed=4)
        loader = ShardedLoader(corpus, 4, 8)
        b0, b1 = loader.get_batch(0), loader.get_batch(1)
        # SGD: Adam's 1/sqrt(v) normalization amplifies fp32 rounding of
        # otherwise-identical gradients.
        tr_a = Trainer(model_a, SGD(model_a.parameters(), lr=1e-2),
                       schedule=ConstantLR(1e-2))
        tr_a.train_step_accumulated([b0, b1])

        model_b = build_model(exact_cfg, seed=4)
        big = Batch(
            tokens=np.concatenate([b0.tokens, b1.tokens]),
            targets=np.concatenate([b0.targets, b1.targets]),
            step=0,
        )
        tr_b = Trainer(model_b, SGD(model_b.parameters(), lr=1e-2),
                       schedule=ConstantLR(1e-2))
        tr_b.train_step(big)

        for (_, pa), (_, pb) in zip(model_a.named_parameters(), model_b.named_parameters()):
            assert np.allclose(pa.data, pb.data, atol=1e-6)

    def test_fit_with_accumulation_consumes_distinct_batches(self):
        model, corpus = self._setup()
        loader = ShardedLoader(corpus, 2, 8)
        tr = Trainer(model, Adam(model.parameters(), lr=1e-3))
        results = tr.fit(loader, num_steps=3, accumulate_steps=2)
        assert len(results) == 3
        assert tr.step_count == 3

    def test_reported_loss_is_mean(self):
        model, corpus = self._setup()
        loader = ShardedLoader(corpus, 4, 8)
        b0, b1 = loader.get_batch(0), loader.get_batch(1)
        tr = Trainer(model, Adam(model.parameters(), lr=1e-9))
        res = tr.train_step_accumulated([b0, b1])

        model2, _ = self._setup()
        l0 = model2.loss(b0.tokens, b0.targets).item()
        l1 = model2.loss(b1.tokens, b1.targets).item()
        assert res.loss == pytest.approx((l0 + l1) / 2, abs=1e-5)

    def test_empty_batches_rejected(self):
        model, _ = self._setup()
        tr = Trainer(model, Adam(model.parameters(), lr=1e-3))
        with pytest.raises(ConfigError):
            tr.train_step_accumulated([])
        with pytest.raises(ConfigError):
            tr.fit(ShardedLoader(SyntheticCorpus(), 1, 4), 1, accumulate_steps=0)

    def test_convergence_with_accumulation(self):
        model, corpus = self._setup(seed=6)
        loader = ShardedLoader(corpus, 4, 8)
        tr = Trainer(model, Adam(model.parameters(), lr=3e-3))
        results = tr.fit(loader, 20, accumulate_steps=2)
        assert results[-1].loss < results[0].loss
