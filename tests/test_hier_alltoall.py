"""Functional hierarchical alltoall: equivalence + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicatorError
from repro.network import sunway_network
from repro.simmpi import hierarchical_alltoall, run_spmd


def _exchange(size, group_size, payload_fn):
    def program(comm):
        send = [payload_fn(comm.rank, d) for d in range(comm.size)]
        flat = comm.alltoall(list(send))
        hier = hierarchical_alltoall(comm, send, group_size)
        return flat, hier

    return run_spmd(program, size, timeout=120)


class TestEquivalence:
    @pytest.mark.parametrize("size,group", [(4, 2), (8, 2), (8, 4), (12, 3), (16, 4)])
    def test_matches_flat_alltoall_scalars(self, size, group):
        res = _exchange(size, group, lambda s, d: s * 1000 + d)
        for flat, hier in res.returns:
            assert flat == hier

    def test_matches_flat_alltoall_arrays(self):
        res = _exchange(
            8, 4, lambda s, d: np.full(3, s * 10 + d, dtype=np.float64)
        )
        for flat, hier in res.returns:
            for a, b in zip(flat, hier):
                assert np.array_equal(a, b)

    def test_variable_payload_sizes(self):
        res = _exchange(
            6, 3, lambda s, d: list(range(s + d + 1))
        )
        for flat, hier in res.returns:
            assert flat == hier

    def test_degenerate_groups(self):
        # group_size == 1 and group_size == size both fall back to flat.
        for group in (1, 4):
            res = _exchange(4, group, lambda s, d: (s, d))
            for flat, hier in res.returns:
                assert flat == hier

    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_property_random_shapes(self, groups, per_group):
        size = groups * per_group
        res = _exchange(size, per_group, lambda s, d: {"src": s, "dst": d})
        for flat, hier in res.returns:
            assert flat == hier


class TestTrafficPattern:
    def test_fewer_cross_group_bytes_per_message(self):
        """The two-phase exchange aggregates inter-group traffic: the
        inter phase sends num_groups-1 bundles instead of p-1 singles."""

        def program(comm):
            send = [np.zeros(64) for _ in range(comm.size)]
            hierarchical_alltoall(comm, send, group_size=4)
            return None

        res = run_spmd(program, 8, network=sunway_network(8, supernode_size=4))
        calls = res.stats.collective_calls
        # Stats count once per sub-communicator leader: the intra phase
        # runs on 2 groups, the inter phase on 4 position-comms -> 6.
        assert calls["alltoall"] == 6
        assert calls["split"] == 2

    def test_virtual_time_positive(self):
        def program(comm):
            send = [np.zeros(1024) for _ in range(comm.size)]
            hierarchical_alltoall(comm, send, group_size=4)
            return comm.clock

        res = run_spmd(program, 8, network=sunway_network(8, supernode_size=4))
        assert res.simulated_time > 0


class TestValidation:
    def test_bad_group_size(self):
        def program(comm):
            hierarchical_alltoall(comm, [0] * comm.size, group_size=3)

        with pytest.raises(CommunicatorError):
            run_spmd(program, 4, timeout=60)

    def test_bad_send_list_length(self):
        def program(comm):
            hierarchical_alltoall(comm, [0], group_size=2)

        with pytest.raises(CommunicatorError):
            run_spmd(program, 4, timeout=60)
