"""Odds-and-ends coverage: small accessors and invariants not covered by
the feature-focused suites."""

import numpy as np
import pytest

from repro.moe import TopKGate, load_stats
from repro.models import tiny_config
from repro.simmpi import SpmdResult, TrafficStats
from repro.tensor import Tensor


class TestGateOutputAccessors:
    def test_num_tokens_and_top_k(self):
        gate = TopKGate(num_experts=4, top_k=2)
        logits = Tensor(np.random.default_rng(0).normal(size=(10, 4)), dtype="fp64")
        out = gate(logits, np.random.default_rng(1))
        assert out.num_tokens == 10
        assert out.top_k == 2


class TestSpmdResultAccessors:
    def test_empty_clocks_simulated_time(self):
        res = SpmdResult(returns=[], clocks=[], stats=TrafficStats())
        assert res.simulated_time == 0.0

    def test_traffic_stats_summary_keys(self):
        s = TrafficStats()
        s.record_p2p(0, 100)
        s.record_collective("allreduce", 50)
        summary = s.summary()
        assert summary["p2p_bytes"] == 100
        assert summary["collective_bytes"] == {"allreduce": 50}
        assert summary["total_bytes"] == 150


class TestConfigDerivedCounts:
    def test_moe_layer_counting(self):
        cfg = tiny_config(n_layers=4, moe_every=2)
        assert cfg.num_moe_layers == 2
        assert cfg.num_dense_ffn_layers == 2

    def test_all_moe_when_every_is_one(self):
        cfg = tiny_config(n_layers=4, moe_every=1)
        assert cfg.num_moe_layers == 4
        assert cfg.num_dense_ffn_layers == 0

    def test_param_breakdown_sums_to_total(self):
        cfg = tiny_config()
        total = (
            cfg.attention_params
            + cfg.moe_params
            + cfg.dense_ffn_params
            + cfg.layernorm_params
            + cfg.embedding_params
        )
        assert total == cfg.total_params

    def test_active_leq_total(self):
        for cfg in (tiny_config(), tiny_config(top_k=2)):
            assert cfg.active_params_per_token <= cfg.total_params


class TestLoadStatsEdge:
    def test_single_expert(self):
        s = load_stats(np.array([10]))
        assert s.imbalance == 1.0
        assert s.max == s.min == 10


class TestPipelineStageAux:
    def test_stage_without_moe_has_no_aux(self):
        from repro.parallel import PipelineStage

        cfg = tiny_config(n_layers=2, moe_every=3)  # no MoE layer triggers
        stage = PipelineStage(cfg, num_stages=1, stage=0, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, cfg.d_model)).astype(np.float32))
        h = stage.embed(np.zeros((1, 4), dtype=np.int64))
        stage(h)
        assert stage.aux_loss() is None


class TestStepBreakdownDict:
    def test_as_dict_consistency(self):
        from repro.hardware import sunway_machine
        from repro.models import bagualu_14_5t
        from repro.network import sunway_network
        from repro.perf import ParallelPlan, StepModel

        sm = StepModel(bagualu_14_5t(), sunway_machine(1024), sunway_network(1024))
        bd = sm.step_breakdown(ParallelPlan(num_nodes=1024, ep_size=1024, seq_len=2048))
        d = bd.as_dict()
        assert d["total"] == pytest.approx(
            d["dense_compute"] + d["expert_compute"] + d["alltoall"]
            + d["dense_allreduce"] + d["expert_allreduce"]
        )
