"""The full user workflow in one story:

train distributed -> evaluate distributed -> save sharded checkpoint ->
restore under a different EP layout -> continue training -> generate text.

Every transition preserves the numbers it should preserve.
"""

import numpy as np
import pytest

from repro.data import ShardedLoader, SyntheticCorpus
from repro.models import generate, tiny_config
from repro.parallel import (
    MoDaTrainer,
    build_groups,
    build_moda_model,
    load_distributed,
    save_distributed,
)
from repro.simmpi import run_spmd
from repro.train import Adam

CFG = tiny_config(num_experts=4)
SEED = 31


def _corpus():
    return SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.95, seed=5)


class TestFullWorkflow:
    def test_train_eval_checkpoint_reshard_generate(self, tmp_path):
        ckpt = tmp_path / "ckpt"

        # ---- Phase 1: train on 4 ranks (ep=2), evaluate, checkpoint ----
        def phase1(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(CFG, groups, seed=SEED)
            opt = Adam(model.parameters(), lr=3e-3)
            trainer = MoDaTrainer(model, opt, groups)
            loader = ShardedLoader(_corpus(), 4, 8, dp_rank=comm.rank,
                                   dp_size=comm.size)
            for step in range(6):
                trainer.train_step(loader.get_batch(step))
            eval_loader = ShardedLoader(_corpus(), 4, 8, dp_rank=comm.rank,
                                        dp_size=comm.size)
            metrics = trainer.evaluate(eval_loader, 2, start_step=500)
            save_distributed(ckpt, model, groups, step=6, optimizer=opt)
            return metrics

        res1 = run_spmd(phase1, 4, timeout=600)
        m0 = res1.returns[0]
        # Every rank reports the same global metrics.
        for m in res1.returns[1:]:
            assert m["loss"] == pytest.approx(m0["loss"])
        assert m0["perplexity"] == pytest.approx(np.exp(m0["loss"]), rel=1e-6)

        # ---- Phase 2: restore on 2 ranks (ep=2 resharded), eval again ----
        def phase2(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(CFG, groups, seed=99)  # wrong init
            load_distributed(ckpt, model)
            trainer = MoDaTrainer(model, Adam(model.parameters(), lr=3e-3),
                                  groups, sync_initial_params=False)
            eval_loader = ShardedLoader(_corpus(), 4, 8, dp_rank=comm.rank,
                                        dp_size=comm.size)
            return trainer.evaluate(eval_loader, 2, start_step=500)

        res2 = run_spmd(phase2, 2, timeout=600)
        # Different world size => different eval shards; the *model* is the
        # same, so eval loss must be close (same distribution), and keep
        # the trained-model advantage over a fresh one.
        assert abs(res2.returns[0]["loss"] - m0["loss"]) < 0.3

        # ---- Phase 3: continue training from the checkpoint ----
        def phase3(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(CFG, groups, seed=99)
            opt = Adam(model.parameters(), lr=3e-3)
            load_distributed(ckpt, model, optimizer=opt,
                             world_rank=comm.rank, world_size=comm.size)
            trainer = MoDaTrainer(model, opt, groups, sync_initial_params=False)
            trainer.step_count = 6
            loader = ShardedLoader(_corpus(), 4, 8, dp_rank=comm.rank,
                                   dp_size=comm.size)
            losses = [trainer.train_step(loader.get_batch(s)).global_loss
                      for s in range(6, 10)]
            return losses, model.state_dict()

        res3 = run_spmd(phase3, 4, timeout=600)
        losses3 = res3.returns[0][0]
        assert all(np.isfinite(v) for v in losses3)

        # ---- Phase 4: single-process generation from the final model ----
        def build_single(comm):
            groups = build_groups(comm, 1)
            model = build_moda_model(CFG, groups, seed=0)
            load_distributed(ckpt, model)
            return model

        model = run_spmd(build_single, 1, timeout=300).returns[0]
        corpus = _corpus()
        prompt = np.array([[int(corpus.sample(1)[0])]])
        out = generate(model, prompt, 12, greedy=True)
        assert out.shape == (1, 13)
        # The trained model should mostly follow the learned successor rule.
        follows = sum(
            out[0, i + 1] == corpus.successor[out[0, i]]
            for i in range(out.shape[1] - 1)
        )
        assert follows >= 6

    def test_distributed_eval_validation(self):
        def program(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(CFG, groups, seed=1)
            trainer = MoDaTrainer(model, Adam(model.parameters(), lr=1e-3), groups)
            loader = ShardedLoader(_corpus(), 2, 8, dp_rank=comm.rank,
                                   dp_size=comm.size)
            from repro.errors import ConfigError

            try:
                trainer.evaluate(loader, 0)
            except ConfigError:
                # All ranks raise together (no collective was issued).
                return "raised"
            return "no-raise"

        res = run_spmd(program, 4, timeout=300)
        assert res.returns == ["raised"] * 4
