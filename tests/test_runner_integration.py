"""End-to-end integration: the experiment runner and cross-strategy facts.

These are the measured-side claims the benchmarks print:

* every strategy trains (loss decreases) and agrees on the trajectory;
* MoDa's simulated step time beats flat EP at multi-supernode scale;
* mixed precision works under the distributed trainer;
* timing responds to the algorithm knobs.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import tiny_config
from repro.network import flat_network, sunway_network
from repro.parallel import TrainingRunConfig, run_distributed_training

CFG = tiny_config(num_experts=8)


def run(world=8, ep=4, steps=3, **kw):
    rc = TrainingRunConfig(
        model=CFG, world_size=world, ep_size=ep, num_steps=steps,
        batch_size=2, seq_len=8, **kw,
    )
    return run_distributed_training(rc)


class TestRunner:
    def test_returns_consistent_result(self):
        res = run()
        assert len(res.losses) == 3
        assert res.simulated_time > 0
        assert res.step_time == pytest.approx(res.simulated_time / 3)
        assert res.traffic["total_bytes"] > 0
        assert res.load_imbalance >= 1.0

    def test_loss_decreases_over_steps(self):
        res = run(steps=8)
        assert res.losses[-1] < res.losses[0]

    def test_strategies_agree_on_losses(self):
        dp = run(ep=1)
        hybrid = run(ep=4)
        flat = run(ep=8, alltoall_algorithm="flat")
        assert np.allclose(dp.losses, hybrid.losses, atol=1e-4)
        assert np.allclose(dp.losses, flat.losses, atol=1e-4)

    def test_mixed_precision_trains(self):
        res = run(steps=6, mixed_precision=True)
        assert res.losses[-1] < res.losses[0] + 0.1
        assert all(np.isfinite(v) for v in res.losses)

    def test_fp16_close_to_fp32(self):
        a = run(steps=4)
        b = run(steps=4, mixed_precision=True)
        assert max(abs(x - y) for x, y in zip(a.losses, b.losses)) < 0.2

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=CFG, world_size=6, ep_size=4)
        with pytest.raises(ConfigError):
            TrainingRunConfig(model=CFG, world_size=0, ep_size=1)


class TestTimingShapes:
    def test_compute_time_dominates_when_enabled(self):
        with_compute = run(model_compute_time=True)
        without = run(model_compute_time=False)
        assert with_compute.simulated_time > without.simulated_time

    def test_alltoall_algorithm_changes_time_not_loss(self):
        # A multi-supernode machine, so hierarchical aggregation has a
        # hierarchy to exploit.
        net = sunway_network(8, supernode_size=2)
        flat = run_distributed_training(
            TrainingRunConfig(model=CFG, world_size=8, ep_size=8, num_steps=3,
                              batch_size=2, seq_len=8, alltoall_algorithm="flat",
                              model_compute_time=False),
            network=net,
        )
        hier = run_distributed_training(
            TrainingRunConfig(model=CFG, world_size=8, ep_size=8, num_steps=3,
                              batch_size=2, seq_len=8,
                              alltoall_algorithm="hierarchical",
                              model_compute_time=False),
            network=net,
        )
        assert np.allclose(flat.losses, hier.losses, atol=1e-5)
        assert flat.simulated_time != hier.simulated_time

    def test_moda_beats_flat_ep_on_multi_supernode_machine(self):
        """T3 headline, measured: with EP confined to a supernode and
        hierarchical collectives, step time beats machine-wide flat EP."""
        net = sunway_network(16, supernode_size=4)
        wide = CFG.scaled(num_experts=16)  # divisible by ep_size=16

        # MoDa: EP confined to one supernode, hierarchical collectives.
        moda = run_distributed_training(
            TrainingRunConfig(
                model=wide, world_size=16, ep_size=4, num_steps=3,
                batch_size=2, seq_len=8,
                alltoall_algorithm="hierarchical",
                allreduce_algorithm="hierarchical",
                model_compute_time=False,
            ),
            network=net,
        )
        flat_res = run_distributed_training(
            TrainingRunConfig(
                model=wide, world_size=16, ep_size=16, num_steps=3,
                batch_size=2, seq_len=8, alltoall_algorithm="flat",
                allreduce_algorithm="ring", model_compute_time=False,
            ),
            network=net,
        )
        assert moda.simulated_time < flat_res.simulated_time

    def test_network_model_matters(self):
        slow = run_distributed_training(
            TrainingRunConfig(model=CFG, world_size=4, ep_size=4, num_steps=2,
                              batch_size=2, seq_len=8, model_compute_time=False),
            network=flat_network(4, bandwidth=1e8),
        )
        fast = run_distributed_training(
            TrainingRunConfig(model=CFG, world_size=4, ep_size=4, num_steps=2,
                              batch_size=2, seq_len=8, model_compute_time=False),
            network=flat_network(4, bandwidth=1e11),
        )
        assert slow.simulated_time > fast.simulated_time


class TestGateStrategiesEndToEnd:
    def test_balanced_gate_reduces_measured_imbalance(self):
        """F5, measured end-to-end through the distributed trainer."""
        topk = run_distributed_training(
            TrainingRunConfig(model=CFG.scaled(gate="topk"), world_size=4,
                              ep_size=4, num_steps=3, batch_size=4, seq_len=16)
        )
        balanced = run_distributed_training(
            TrainingRunConfig(model=CFG.scaled(gate="balanced"), world_size=4,
                              ep_size=4, num_steps=3, batch_size=4, seq_len=16)
        )
        assert balanced.load_imbalance <= topk.load_imbalance

    def test_capacity_factor_drops_tokens_but_trains(self):
        res = run_distributed_training(
            TrainingRunConfig(
                model=CFG.scaled(capacity_factor=1.0), world_size=4, ep_size=4,
                num_steps=4, batch_size=4, seq_len=8,
            )
        )
        assert all(np.isfinite(v) for v in res.losses)
