"""MoDa trainer invariants and ZeRO-1 optimizer-state sharding."""

import numpy as np
import pytest

from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import ConfigError
from repro.models import build_model, tiny_config
from repro.parallel import (
    MoDaTrainer,
    ZeroAdamW,
    build_groups,
    build_moda_model,
    shard_bounds,
    split_params,
)
from repro.simmpi import run_spmd
from repro.train import Adam, AdamW
from repro.train.optim import Optimizer


CFG = tiny_config(num_experts=4)


def _train(comm, ep_size, steps=4, optimizer="adam", seed=11, lr=3e-3):
    groups = build_groups(comm, ep_size)
    model = build_moda_model(CFG, groups, seed=seed)
    if optimizer == "adam":
        opt = Adam(model.parameters(), lr=lr)
    else:
        opt = ZeroAdamW(model.parameters(), groups.edp, lr=lr)
    corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=2)
    loader = ShardedLoader(corpus, 4, 8, dp_rank=comm.rank, dp_size=comm.size)
    trainer = MoDaTrainer(model, opt, groups)
    losses = [trainer.train_step(loader.get_batch(s)).global_loss for s in range(steps)]
    dense, expert = split_params(model)
    return {
        "losses": losses,
        "dense_fingerprint": float(sum(np.abs(p.data).sum() for p in dense)),
        "expert_fingerprint": float(sum(np.abs(p.data).sum() for p in expert)),
        "history": [(r.dense_sync_bytes, r.expert_sync_bytes) for r in trainer.history],
    }


class TestMoDaTrainer:
    def test_global_loss_identical_across_ranks(self):
        res = run_spmd(_train, 4, args=(2,), timeout=300)
        base = res.returns[0]["losses"]
        for r in res.returns[1:]:
            assert np.allclose(r["losses"], base)

    def test_loss_decreases(self):
        res = run_spmd(_train, 4, args=(2, 8), timeout=300)
        losses = res.returns[0]["losses"]
        assert losses[-1] < losses[0]

    def test_dense_replicas_stay_in_sync(self):
        res = run_spmd(_train, 4, args=(2,), timeout=300)
        fps = [r["dense_fingerprint"] for r in res.returns]
        assert all(abs(f - fps[0]) < 1e-4 for f in fps)

    def test_edp_replicas_stay_in_sync(self):
        """Ranks with the same EP position hold identical expert shards."""
        res = run_spmd(_train, 4, args=(2,), timeout=300)
        # world 4, ep 2: EDP pairs are (0, 2) and (1, 3).
        fps = [r["expert_fingerprint"] for r in res.returns]
        assert abs(fps[0] - fps[2]) < 1e-4
        assert abs(fps[1] - fps[3]) < 1e-4

    def test_sync_bytes_reported(self):
        res = run_spmd(_train, 4, args=(2,), timeout=300)
        dense_bytes, expert_bytes = res.returns[0]["history"][0]
        assert dense_bytes > 0
        assert expert_bytes > 0

    def test_strategy_equivalence(self):
        """Pure DP (ep=1), hybrid (ep=2), and full EP (ep=4) must produce the
        same loss trajectory — parallel layout changes placement only."""
        r1 = run_spmd(_train, 4, args=(1,), timeout=300).returns[0]["losses"]
        r2 = run_spmd(_train, 4, args=(2,), timeout=300).returns[0]["losses"]
        r4 = run_spmd(_train, 4, args=(4,), timeout=300).returns[0]["losses"]
        assert np.allclose(r1, r2, atol=1e-4)
        assert np.allclose(r1, r4, atol=1e-4)

    def test_matches_single_process_trainer(self):
        """MoDa on 1 rank with ep=1 must equal the plain Trainer."""
        from repro.train import ConstantLR, Trainer

        res = run_spmd(_train, 1, args=(1, 4), timeout=300).returns[0]

        model = build_moda_model_single()
        corpus = SyntheticCorpus(vocab_size=CFG.vocab_size, predictability=0.9, seed=2)
        loader = ShardedLoader(corpus, 4, 8)
        opt = Adam(model.parameters(), lr=3e-3)
        trainer = Trainer(model, opt, schedule=ConstantLR(3e-3))
        solo = [trainer.train_step(loader.get_batch(s)).loss for s in range(4)]
        assert np.allclose(res["losses"], solo, atol=1e-5)


def build_moda_model_single():
    """A MoDa-constructed model usable outside the SPMD engine.

    With ep_size=1 every collective is a self-exchange on a 1-rank comm,
    which completes without blocking, so the model remains usable after
    run_spmd returns.
    """

    def build(comm):
        groups = build_groups(comm, 1)
        return build_moda_model(CFG, groups, seed=11)

    return run_spmd(build, 1).returns[0]


class TestShardBounds:
    def test_even_partition(self):
        assert shard_bounds(12, 4, 0) == (0, 3)
        assert shard_bounds(12, 4, 3) == (9, 12)

    def test_uneven_partition_covers_all(self):
        total = 13
        spans = [shard_bounds(total, 4, r) for r in range(4)]
        assert spans[0][0] == 0
        assert spans[-1][1] == total
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c
        sizes = [b - a for a, b in spans]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid(self):
        with pytest.raises(ConfigError):
            shard_bounds(10, 0, 0)
        with pytest.raises(ConfigError):
            shard_bounds(10, 2, 2)


class TestZeroAdamW:
    def test_matches_unsharded_adamw(self):
        """ZeRO-1 sharding must be a pure memory optimization: parameter
        trajectories match plain AdamW bit-for-bit (up to fp roundoff)."""

        def zero_program(comm):
            rng = np.random.default_rng(0)
            from repro.models import Linear

            lin = Linear(6, 6, rng)
            opt = ZeroAdamW(lin.parameters(), comm, lr=0.01, weight_decay=0.01)
            grng = np.random.default_rng(1)
            for _ in range(5):
                for p in lin.parameters():
                    p.grad = grng.normal(size=p.shape).astype(np.float32)
                opt.step()
            return lin.weight.data.copy()

        sharded = run_spmd(zero_program, 4).returns

        rng = np.random.default_rng(0)
        from repro.models import Linear

        lin = Linear(6, 6, rng)
        opt = AdamW(lin.parameters(), lr=0.01, weight_decay=0.01)
        grng = np.random.default_rng(1)
        for _ in range(5):
            for p in lin.parameters():
                p.grad = grng.normal(size=p.shape).astype(np.float32)
            opt.step()

        for w in sharded:
            assert np.allclose(w, lin.weight.data, atol=1e-5)

    def test_state_memory_shrinks_with_ranks(self):
        def program(comm):
            from repro.models import Linear

            lin = Linear(8, 8, np.random.default_rng(0))
            opt = ZeroAdamW(lin.parameters(), comm, lr=0.01)
            return opt.optimizer_state_bytes()

        solo = run_spmd(program, 1).returns[0]
        quad = run_spmd(program, 4).returns
        assert sum(quad) == solo  # total state conserved
        assert max(quad) <= solo // 4 + 12  # per-rank ~ 1/4

    def test_in_moda_trainer(self):
        res = run_spmd(_train, 4, args=(2, 4, "zero"), timeout=300)
        base = res.returns[0]["losses"]
        assert base[-1] < base[0]
        for r in res.returns[1:]:
            assert np.allclose(r["losses"], base)

    def test_zero_matches_adam_free_trainer(self):
        """ZeRO trajectory == replicated-AdamW trajectory (wd=0 ~ Adam)."""
        plain = run_spmd(_train, 4, args=(2, 3, "adam"), timeout=300).returns[0]["losses"]
        zero = run_spmd(_train, 4, args=(2, 3, "zero"), timeout=300).returns[0]["losses"]
        assert np.allclose(plain, zero, atol=1e-3)

    def test_requires_params(self):
        def program(comm):
            ZeroAdamW([], comm, lr=0.1)

        with pytest.raises(ConfigError):
            run_spmd(program, 2)
