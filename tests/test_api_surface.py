"""API-surface sanity: public exports exist, __all__ is honest, reprs work.

Cheap guards against the failure mode where a refactor silently drops a
public name that examples/benchmarks import.
"""

import importlib

import numpy as np
import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.simmpi",
    "repro.network",
    "repro.hardware",
    "repro.tensor",
    "repro.models",
    "repro.moe",
    "repro.parallel",
    "repro.amp",
    "repro.train",
    "repro.data",
    "repro.perf",
    "repro.plan",
    "repro.resilience",
    "repro.serve",
    "repro.cli",
    "repro.errors",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for export in getattr(mod, "__all__", []):
        assert hasattr(mod, export), f"{name}.__all__ lists missing {export!r}"


def test_root_exports_resilience_surface():
    """Historical root conveniences still resolve (now via shims)."""
    import repro

    for name in (
        "FaultModel", "FaultPlan", "FlakyLink",
        "Supervisor", "ElasticRunConfig", "ElasticRunResult",
        "run_elastic_training",
    ):
        with pytest.warns(DeprecationWarning):
            assert hasattr(repro, name), name
        assert name in repro.__all__


class TestApiFacade:
    def test_facade_is_complete(self):
        """Every promised name resolves and nothing private leaks."""
        import repro.api as api

        assert len(api.__all__) == len(set(api.__all__))
        for name in api.__all__:
            assert not name.startswith("_"), f"private name {name!r} in __all__"
            assert getattr(api, name) is not None

    def test_facade_covers_each_subsystem(self):
        import repro.api as api

        for name in (
            "build_model", "generate", "tiny_config",           # models
            "TrainingRunConfig", "run_distributed_training",    # training
            "ElasticRunConfig", "run_elastic_training",         # elastic
            "ServeConfig", "run_serving", "KVCache",            # serving
            "run_spmd", "sunway_network", "sunway_machine",     # substrate
            "LatencyStats", "MetricsLogger",                    # metrics
        ):
            assert name in api.__all__, name

    def test_import_api_is_warning_free(self):
        """The facade import path must never trip its own shims (CI runs
        the same check as a subprocess with -W error)."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", "import repro.api"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    @pytest.mark.parametrize(
        "name",
        ["FaultModel", "Supervisor", "ElasticRunConfig", "run_elastic_training"],
    )
    def test_root_shim_warns_and_names_new_path(self, name):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.api"):
            via_root = getattr(repro, name)
        import repro.api as api

        assert via_root is getattr(api, name)

    def test_root_getattr_still_raises_for_unknown(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_name_ever

    def test_facade_objects_are_canonical(self):
        """The facade re-exports, it does not wrap."""
        import repro.api as api
        from repro.models import build_model
        from repro.serve import run_serving

        assert api.build_model is build_model
        assert api.run_serving is run_serving


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_error_hierarchy():
    from repro import errors

    for name in (
        "ConfigError", "CommunicatorError", "DeadlockError", "FaultInjected",
        "TopologyError", "ShapeError", "DtypeError", "OverflowDetected",
        "CheckpointError", "PartitionError",
    ):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


class TestReprs:
    def test_tensor_repr(self):
        from repro.tensor import Tensor

        r = repr(Tensor(np.zeros((2, 3)), requires_grad=True, name="w"))
        assert "shape=(2, 3)" in r and "'w'" in r

    def test_topology_repr(self):
        from repro.network import sunway_topology

        assert "nodes=512" in repr(sunway_topology(512))

    def test_comm_repr(self):
        from repro.simmpi import run_spmd

        res = run_spmd(lambda c: repr(c), 2)
        assert "rank=0/2" in res.returns[0]

    def test_load_stats_str(self):
        from repro.moe import load_stats

        s = str(load_stats(np.array([4, 4])))
        assert "imbalance" in s


class TestKeyAPIsHaveDocstrings:
    @pytest.mark.parametrize(
        "path",
        [
            "repro.simmpi.run_spmd",
            "repro.simmpi.Comm.allreduce",
            "repro.simmpi.Comm.alltoall",
            "repro.simmpi.hierarchical_alltoall",
            "repro.tensor.Tensor.backward",
            "repro.tensor.checkpoint",
            "repro.models.MoELayer",
            "repro.models.generate",
            "repro.parallel.DistributedMoELayer",
            "repro.parallel.MoDaTrainer",
            "repro.parallel.GPipeRunner",
            "repro.parallel.Trainer3D",
            "repro.parallel.ZeroAdamW",
            "repro.parallel.run_resilient_training",
            "repro.parallel.named_optimizer_state",
            "repro.parallel.verify_snapshot",
            "repro.resilience.Supervisor",
            "repro.resilience.Supervisor.run",
            "repro.resilience.ElasticStepDriver",
            "repro.resilience.classify_failure",
            "repro.simmpi.FaultModel",
            "repro.simmpi.FlakyLink",
            "repro.perf.StepModel",
            "repro.perf.calibrate_efficiency",
            "repro.train.Trainer",
            "repro.train.LatencyStats",
            "repro.amp.DynamicLossScaler",
            "repro.serve.KVCache",
            "repro.serve.ContinuousBatchScheduler",
            "repro.serve.run_serving",
            "repro.serve.run_sequential_baseline",
        ],
    )
    def test_docstring_present(self, path):
        mod_name, _, attr_path = path.partition(".")
        obj = importlib.import_module(mod_name)
        for part in path.split(".")[1:]:
            obj = getattr(obj, part)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20, f"{path} lacks docs"
