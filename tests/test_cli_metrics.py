"""CLI commands and the metrics logger."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError
from repro.train.metrics import MetricsLogger, read_jsonl


class TestMetricsLogger:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsLogger(path) as logger:
            logger.log({"step": 0, "loss": 1.5})
            logger.log({"step": 1, "loss": 1.2})
        records = read_jsonl(path)
        assert records == [{"step": 0, "loss": 1.5}, {"step": 1, "loss": 1.2}]

    def test_append_mode(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsLogger(path) as logger:
            logger.log({"a": 1})
        with MetricsLogger(path) as logger:
            logger.log({"a": 2})
        assert [r["a"] for r in read_jsonl(path)] == [1, 2]

    def test_csv_with_header(self, tmp_path):
        path = tmp_path / "m.csv"
        with MetricsLogger(path) as logger:
            logger.log({"step": 0, "loss": 2.0})
            logger.log({"step": 1, "loss": 1.0})
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "loss,step"
        assert len(lines) == 3

    def test_csv_rejects_key_change(self, tmp_path):
        with MetricsLogger(tmp_path / "m.csv") as logger:
            logger.log({"a": 1})
            with pytest.raises(ConfigError):
                logger.log({"b": 2})

    def test_bad_suffix(self, tmp_path):
        with pytest.raises(ConfigError):
            MetricsLogger(tmp_path / "m.txt")

    def test_records_written_counter(self, tmp_path):
        with MetricsLogger(tmp_path / "m.jsonl") as logger:
            assert logger.records_written == 0
            logger.log({"x": 1})
            assert logger.records_written == 1

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            read_jsonl(tmp_path / "nope.jsonl")


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_configs_command(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "bagualu-14.5T" in out
        assert "14.50T" in out

    def test_train_command_with_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "train.jsonl"
        code = main([
            "train", "--steps", "5", "--batch-size", "2", "--seq-len", "8",
            "--metrics", str(metrics),
        ])
        assert code == 0
        records = read_jsonl(metrics)
        assert len(records) == 5
        assert {"step", "loss", "lr", "skipped"} <= set(records[0])

    def test_train_fp16(self, capsys):
        assert main(["train", "--steps", "3", "--batch-size", "2",
                     "--seq-len", "8", "--fp16"]) == 0
        assert "[fp16]" in capsys.readouterr().out

    def test_train_with_sampling(self, capsys):
        assert main(["train", "--steps", "2", "--batch-size", "2",
                     "--seq-len", "8", "--sample", "4"]) == 0
        assert "greedy sample" in capsys.readouterr().out

    def test_distributed_command(self, tmp_path, capsys):
        metrics = tmp_path / "dist.jsonl"
        code = main([
            "distributed", "--world", "4", "--ep", "2", "--steps", "2",
            "--batch-size", "2", "--seq-len", "8", "--supernode", "2",
            "--metrics", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated step time" in out
        records = read_jsonl(metrics)
        # One record per step plus one RunContext summary at the end.
        assert len(records) == 3
        assert [r["step"] for r in records[:2]] == [0, 1]
        summary = records[-1]
        assert summary["total_bytes"] > 0
        assert summary["strategy"] == "moda"
        assert any(k.startswith("phase_") for k in summary)

    def test_project_command(self, capsys):
        assert main(["project", "--model", "174T", "--zero", "64"]) == 0
        out = capsys.readouterr().out
        assert "173.99T" in out
        assert "node memory" in out

    def test_project_with_recompute(self, capsys):
        main(["project", "--model", "14.5T"])
        base = capsys.readouterr().out
        main(["project", "--model", "14.5T", "--recompute"])
        ck = capsys.readouterr().out
        assert base != ck  # memory/step numbers must move

    def test_gate_override(self, capsys):
        assert main(["train", "--steps", "2", "--batch-size", "2",
                     "--seq-len", "8", "--gate", "balanced"]) == 0


class TestCLI3D:
    def test_3d_command(self, capsys):
        assert main(["3d", "--world", "4", "--pipe", "2", "--ep", "2",
                     "--steps", "2", "--batch-size", "2", "--seq-len", "8",
                     "--microbatches", "2"]) == 0
        out = capsys.readouterr().out
        assert "3D grid" in out
        assert "global loss" in out

    def test_3d_pure_pipeline(self, capsys):
        assert main(["3d", "--world", "2", "--pipe", "2", "--ep", "1",
                     "--steps", "1", "--batch-size", "2", "--seq-len", "8"]) == 0
        assert "pipe=2" in capsys.readouterr().out
