"""Optimizers, LR schedules, gradient clipping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import Parameter
from repro.train import SGD, Adam, AdamW, ConstantLR, WarmupCosineLR, WarmupLinearLR, clip_grad_norm, global_grad_norm
from repro.tensor import Tensor


def quad_param(value=5.0, dtype="fp32"):
    """A parameter minimizing f(w) = w^2 (grad = 2w)."""
    return Parameter(np.array([value]), dtype=dtype)


def set_grad(p, g):
    p.grad = np.asarray(g, dtype=p.data.dtype)


class TestSGD:
    def test_basic_step(self):
        p = quad_param(1.0)
        opt = SGD([p], lr=0.1)
        set_grad(p, [2.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        p = quad_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        set_grad(p, [1.0])
        opt.step()
        set_grad(p, [1.0])
        opt.step()  # velocity = 0.5*1 + 1 = 1.5
        assert p.data[0] == pytest.approx(-2.5)

    def test_skips_params_without_grad(self):
        p = quad_param(3.0)
        opt = SGD([p], lr=0.1)
        opt.step()
        assert p.data[0] == pytest.approx(3.0)

    def test_converges_on_quadratic(self):
        p = quad_param(5.0)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            set_grad(p, 2 * p.data)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_grad_scale(self):
        p = quad_param(1.0)
        opt = SGD([p], lr=0.1)
        set_grad(p, [20.0])
        opt.step(grad_scale=0.1)  # effective grad 2.0
        assert p.data[0] == pytest.approx(0.8)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigError):
            SGD([quad_param()], lr=-1.0)
        with pytest.raises(ConfigError):
            SGD([quad_param()], lr=0.1, momentum=1.0)

    def test_state_dict_roundtrip(self):
        p = quad_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.9)
        set_grad(p, [1.0])
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([quad_param(1.0)], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.step_count == 1
        assert np.allclose(opt2._velocity[0], opt._velocity[0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |first update| ~ lr regardless of grad scale."""
        p = quad_param(0.0)
        opt = Adam([p], lr=0.01)
        set_grad(p, [1000.0])
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=0.01)

    def test_converges_on_quadratic(self):
        p = quad_param(5.0, dtype="fp64")
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            set_grad(p, 2 * p.data)
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_coupled(self):
        p = quad_param(1.0)
        opt = Adam([p], lr=0.01, weight_decay=0.1)
        set_grad(p, [0.0])
        opt.step()
        assert p.data[0] < 1.0  # decay pulls toward zero via the gradient

    def test_adamw_decoupled_decay(self):
        p = quad_param(1.0)
        opt = AdamW([p], lr=0.01, weight_decay=0.1)
        set_grad(p, [0.0])
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01 * 0.1 * 1.0)

    def test_invalid_betas(self):
        with pytest.raises(ConfigError):
            Adam([quad_param()], betas=(1.0, 0.9))

    def test_state_dict_roundtrip(self):
        p = quad_param(2.0)
        opt = Adam([p], lr=0.1)
        set_grad(p, [1.0])
        opt.step()
        opt2 = Adam([quad_param(2.0)], lr=0.1)
        opt2.load_state_dict(opt.state_dict())
        assert opt2.step_count == 1
        assert np.allclose(opt2._m[0], opt._m[0])
        assert np.allclose(opt2._v[0], opt._v[0])


class TestMasterWeights:
    def test_fp16_param_gets_master(self):
        p = quad_param(1.0, dtype="fp16")
        opt = Adam([p], lr=1e-4)
        assert 0 in opt._masters

    def test_fp32_param_no_master(self):
        p = quad_param(1.0, dtype="fp32")
        opt = Adam([p], lr=1e-4)
        assert 0 not in opt._masters

    def test_tiny_updates_accumulate_in_master(self):
        """fp16 weights stall on tiny updates; masters must not."""
        p = quad_param(1.0, dtype="fp16")
        opt = SGD([p], lr=1e-7)
        for _ in range(1000):
            set_grad(p, [1.0])
            opt.step()
        # 1000 updates of 1e-7 = 1e-4 total, invisible per-step in fp16
        # around 1.0 (grid ~ 5e-4) but preserved by the fp32 master.
        assert opt.master_of(0)[0] == pytest.approx(1.0 - 1e-4, rel=1e-3)

    def test_param_stays_quantized(self):
        p = quad_param(1.0, dtype="fp16")
        opt = SGD([p], lr=0.1)
        set_grad(p, [0.3])
        opt.step()
        from repro.tensor import quantize

        assert np.array_equal(p.data, quantize(p.data, "fp16"))


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.5)
        assert s(0) == s(1000) == 0.5

    def test_warmup_ramps_linearly(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=10, total_steps=100)
        assert s(0) == pytest.approx(0.1)
        assert s(4) == pytest.approx(0.5)
        assert s(9) == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=0, total_steps=100, min_lr=0.1)
        assert s(0) <= 1.0
        assert s(99) == pytest.approx(0.1, abs=0.01)
        assert s(1000) == pytest.approx(0.1)

    def test_cosine_midpoint(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=0, total_steps=100)
        assert s(50) == pytest.approx(0.5, abs=0.02)

    def test_linear_decay(self):
        s = WarmupLinearLR(peak_lr=1.0, warmup_steps=0, total_steps=100)
        assert s(50) == pytest.approx(0.5, abs=0.02)

    def test_monotone_after_warmup(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=5, total_steps=50)
        lrs = [s(i) for i in range(5, 50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid(self):
        with pytest.raises(ConfigError):
            WarmupCosineLR(peak_lr=0.0, warmup_steps=0, total_steps=10)
        with pytest.raises(ConfigError):
            WarmupCosineLR(peak_lr=1.0, warmup_steps=20, total_steps=10)
        with pytest.raises(ConfigError):
            ConstantLR(0.1)(-1)


class TestClipping:
    def test_norm_computation(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        assert global_grad_norm([p]) == pytest.approx(5.0)

    def test_norm_with_scale(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([30.0, 40.0], dtype=np.float32)
        assert global_grad_norm([p], grad_scale=0.1) == pytest.approx(5.0)

    def test_nonfinite_returns_inf(self):
        p = Parameter(np.zeros(1))
        p.grad = np.array([np.inf], dtype=np.float32)
        assert global_grad_norm([p]) == np.inf

    def test_clip_rescales(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clip_respects_grad_scale(self):
        """Scaled grads are compared in unscaled units."""
        p = Parameter(np.zeros(2))
        p.grad = np.array([300.0, 400.0], dtype=np.float32)  # scale 100
        clip_grad_norm([p], max_norm=1.0, grad_scale=0.01)
        # After the step's unscale (x0.01) the norm will be 1.0.
        assert np.linalg.norm(p.grad) * 0.01 == pytest.approx(1.0, rel=1e-5)

    def test_invalid_max_norm(self):
        with pytest.raises(ConfigError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)
