"""Tests for the collective cost models — the analytic heart of the repro.

Beyond unit correctness, these lock in the *shapes* the paper's
communication contributions rely on:

* hierarchical alltoall beats flat at scale / small messages and loses the
  advantage for huge payloads (the F3 crossover);
* ring allreduce is bandwidth-optimal, tree is latency-optimal;
* hierarchical allreduce beats both on a multi-supernode machine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    AlgorithmPolicy,
    NetworkModel,
    flat_network,
    sunway_network,
    sunway_topology,
    two_level_topology,
)
from repro.network.collectives import (
    cost_allgather,
    cost_barrier,
    cost_bcast,
    cost_flat_alltoall,
    cost_gather,
    cost_hierarchical_alltoall,
    cost_hierarchical_allreduce,
    cost_p2p,
    cost_reduce_scatter,
    cost_ring_allreduce,
    cost_tree_allreduce,
)


@pytest.fixture
def topo():
    return two_level_topology(group_size=8, num_groups=8)


NODES = list(range(64))
INTRA = list(range(8))


class TestBasicCosts:
    def test_p2p_same_node_is_cheap_copy(self, topo):
        assert cost_p2p(topo, 1e6, 3, 3) < cost_p2p(topo, 1e6, 0, 1)

    def test_p2p_cross_group_slower(self, topo):
        assert cost_p2p(topo, 1e6, 0, 8) > cost_p2p(topo, 1e6, 0, 1)

    def test_barrier_single_rank_free(self, topo):
        assert cost_barrier(topo, [5]) == 0.0

    def test_barrier_grows_logarithmically(self, topo):
        t8 = cost_barrier(topo, NODES[:8])
        t64 = cost_barrier(topo, NODES)
        assert t64 > t8
        # log2(64)/log2(8) = 2, but the 64-node barrier crosses groups.
        assert t64 < 20 * t8

    def test_bcast_scales_with_bytes(self, topo):
        assert cost_bcast(topo, 1e6, NODES) > cost_bcast(topo, 1e3, NODES)

    def test_zero_participants_edge(self, topo):
        assert cost_ring_allreduce(topo, 100, []) == 0.0
        assert cost_flat_alltoall(topo, 100, [3]) == 0.0


class TestAllreduceShapes:
    def test_ring_beats_tree_for_large_buffers(self, topo):
        big = 100e6
        assert cost_ring_allreduce(topo, big, INTRA) < cost_tree_allreduce(topo, big, INTRA)

    def test_tree_beats_ring_for_tiny_buffers_many_nodes(self, topo):
        tiny = 8.0
        assert cost_tree_allreduce(topo, tiny, NODES) < cost_ring_allreduce(topo, tiny, NODES)

    def test_hierarchical_beats_flat_ring_cross_group(self, topo):
        nbytes = 10e6
        assert cost_hierarchical_allreduce(topo, nbytes, NODES) < cost_ring_allreduce(
            topo, nbytes, NODES
        )

    def test_hierarchical_falls_back_within_group(self, topo):
        nbytes = 1e6
        assert cost_hierarchical_allreduce(topo, nbytes, INTRA) == cost_ring_allreduce(
            topo, nbytes, INTRA
        )

    @given(st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_costs_positive_and_finite(self, nbytes):
        topo = two_level_topology(4, 4)
        nodes = list(range(16))
        for fn in (cost_ring_allreduce, cost_tree_allreduce, cost_hierarchical_allreduce):
            t = fn(topo, nbytes, nodes)
            assert 0.0 < t < 1e6

    @given(st.floats(min_value=1.0, max_value=1e8), st.floats(min_value=2.0, max_value=1e8))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_monotone_in_bytes(self, a, b):
        topo = two_level_topology(4, 4)
        nodes = list(range(16))
        lo, hi = min(a, b), max(a, b)
        assert cost_ring_allreduce(topo, lo, nodes) <= cost_ring_allreduce(topo, hi, nodes)


class TestAlltoallShapes:
    def test_hierarchical_wins_small_messages_at_scale(self):
        """The headline communication result: fewer inter-group messages."""
        topo = sunway_topology(4096, supernode_size=256)
        nodes = list(range(4096))
        m = 4096.0  # 4 KiB per pair: latency-dominated
        flat = cost_flat_alltoall(topo, m, nodes)
        hier = cost_hierarchical_alltoall(topo, m, nodes)
        assert hier < flat

    def test_flat_competitive_for_huge_messages(self, topo):
        """Crossover: aggregation overhead loses for bandwidth-bound sizes."""
        nodes = NODES
        m = 64e6
        flat = cost_flat_alltoall(topo, m, nodes)
        hier = cost_hierarchical_alltoall(topo, m, nodes)
        assert flat < hier

    def test_hierarchical_falls_back_within_group(self, topo):
        m = 1e4
        assert cost_hierarchical_alltoall(topo, m, INTRA) == cost_flat_alltoall(
            topo, m, INTRA
        )

    def test_alltoall_latency_term_scales_with_p(self, topo):
        tiny = 1.0
        t8 = cost_flat_alltoall(topo, tiny, NODES[:8])
        t64 = cost_flat_alltoall(topo, tiny, NODES)
        assert t64 > 4 * t8  # (p-1) alpha growth

    @given(st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=30, deadline=None)
    def test_alltoall_costs_positive(self, m):
        topo = two_level_topology(4, 4)
        nodes = list(range(16))
        assert cost_flat_alltoall(topo, m, nodes) > 0
        assert cost_hierarchical_alltoall(topo, m, nodes) > 0


class TestOtherCollectives:
    def test_reduce_scatter_half_of_ring_allreduce(self, topo):
        nbytes = 1e6
        rs = cost_reduce_scatter(topo, nbytes, INTRA)
        ar = cost_ring_allreduce(topo, nbytes, INTRA)
        assert rs == pytest.approx(ar / 2)

    def test_allgather_equals_gather_order(self, topo):
        nbytes = 1e5
        assert cost_allgather(topo, nbytes, INTRA) > 0
        assert cost_gather(topo, nbytes, INTRA) > 0


class TestNetworkModel:
    def test_auto_policy_picks_minimum(self):
        net = sunway_network(1024)
        nbytes = 1e6
        ranks = list(range(1024))
        auto = net.allreduce_time(nbytes, ranks)
        assert auto <= net.allreduce_time(nbytes, ranks, algorithm="ring")
        assert auto <= net.allreduce_time(nbytes, ranks, algorithm="tree")
        assert auto <= net.allreduce_time(nbytes, ranks, algorithm="hierarchical")

    def test_forced_algorithm_respected(self):
        net = sunway_network(1024)
        ranks = list(range(1024))
        ring = net.allreduce_time(1e6, ranks, algorithm="ring")
        tree = net.allreduce_time(1e6, ranks, algorithm="tree")
        assert ring != tree

    def test_invalid_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            AlgorithmPolicy(allreduce="magic")
        with pytest.raises(ConfigError):
            AlgorithmPolicy(alltoall="magic")

    def test_rank_to_node_default_mapping_wraps(self):
        net = flat_network(4)
        assert net.node(0) == 0
        assert net.node(5) == 1  # 5 % 4

    def test_custom_rank_mapping(self):
        net = NetworkModel(topology=sunway_topology(16), node_of_rank=lambda r: 15 - r)
        assert net.node(0) == 15

    def test_alltoallv_uses_worst_pair(self):
        net = flat_network(4)
        ranks = list(range(4))
        uniform = net.alltoall_time(1000, ranks)
        skewed = net.alltoallv_time([[0, 1000], [10, 10]], ranks)
        assert skewed == pytest.approx(uniform)

    def test_p2p_time_positive(self):
        net = sunway_network(512)
        assert net.p2p_time(1e6, 0, 300) > net.p2p_time(1e6, 0, 1)
