"""Tensor parallelism: sharding math and exact dense equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import MLP, Linear
from repro.parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    shard_linear_weights,
)
from repro.simmpi import run_spmd
from repro.tensor import Tensor

D, FF = 8, 16
RNG = np.random.default_rng(0)
X = RNG.normal(size=(5, D)).astype(np.float32)


class TestShardWeights:
    def test_column_split(self):
        w = np.arange(12, dtype=np.float64).reshape(3, 4)
        b = np.arange(4, dtype=np.float64)
        w0, b0 = shard_linear_weights(w, b, tp_rank=0, tp_size=2, axis=1)
        w1, b1 = shard_linear_weights(w, b, tp_rank=1, tp_size=2, axis=1)
        assert np.array_equal(np.concatenate([w0, w1], axis=1), w)
        assert np.array_equal(np.concatenate([b0, b1]), b)

    def test_row_split_keeps_bias(self):
        w = np.arange(12, dtype=np.float64).reshape(4, 3)
        b = np.arange(3, dtype=np.float64)
        w0, b0 = shard_linear_weights(w, b, tp_rank=0, tp_size=2, axis=0)
        assert w0.shape == (2, 3)
        assert np.array_equal(b0, b)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            shard_linear_weights(np.zeros((3, 5)), None, 0, 2, axis=1)

    def test_bad_axis(self):
        with pytest.raises(ConfigError):
            shard_linear_weights(np.zeros((4, 4)), None, 0, 2, axis=2)


class TestDenseEquivalence:
    @pytest.mark.parametrize("tp_size", [1, 2, 4])
    def test_mlp_forward_matches_dense(self, tp_size):
        dense = MLP(D, FF, np.random.default_rng(7))
        ref = dense(Tensor(X)).data

        def program(comm):
            tp = TensorParallelMLP(D, FF, comm, np.random.default_rng(7))
            return tp(Tensor(X)).data

        res = run_spmd(program, tp_size, timeout=120)
        for out in res.returns:
            assert np.allclose(out, ref, atol=1e-5)

    def test_mlp_backward_matches_dense(self):
        dense = MLP(D, FF, np.random.default_rng(9))
        x_ref = Tensor(X.copy(), requires_grad=True)
        dense(x_ref).sum().backward()

        def program(comm):
            tp = TensorParallelMLP(D, FF, comm, np.random.default_rng(9))
            x = Tensor(X.copy(), requires_grad=True)
            tp(x).sum().backward()
            # Reassemble the full fc_in weight grad from the column shards.
            return x.grad.copy(), tp.fc_in.weight.grad.copy(), tp.comm.rank

        res = run_spmd(program, 2, timeout=120)
        # Input gradients are full-size on every rank and match dense.
        for xg, _, _ in res.returns:
            assert np.allclose(xg, x_ref.grad, atol=1e-5)
        shards = sorted(res.returns, key=lambda t: t[2])
        full_wg = np.concatenate([wg for _, wg, _ in shards], axis=1)
        assert np.allclose(full_wg, dense.fc_in.weight.grad, atol=1e-5)

    def test_column_linear_shard_of_dense(self):
        dense = Linear(D, FF, np.random.default_rng(3))
        ref = dense(Tensor(X)).data

        def program(comm):
            col = ColumnParallelLinear(D, FF, comm, np.random.default_rng(3))
            return col(Tensor(X)).data, comm.rank

        res = run_spmd(program, 2, timeout=120)
        shards = sorted(res.returns, key=lambda t: t[1])
        full = np.concatenate([s for s, _ in shards], axis=1)
        assert np.allclose(full, ref, atol=1e-5)

    def test_row_linear_sums_partials(self):
        dense = Linear(FF, D, np.random.default_rng(4))
        h = RNG.normal(size=(5, FF)).astype(np.float32)
        ref = dense(Tensor(h)).data

        def program(comm):
            row = RowParallelLinear(FF, D, comm, np.random.default_rng(4))
            per = FF // comm.size
            local = h[:, comm.rank * per: (comm.rank + 1) * per]
            return row(Tensor(local)).data

        res = run_spmd(program, 2, timeout=120)
        for out in res.returns:
            assert np.allclose(out, ref, atol=1e-5)


class TestValidation:
    def test_indivisible_out_features(self):
        def program(comm):
            ColumnParallelLinear(4, 6, comm, np.random.default_rng(0))

        with pytest.raises(ConfigError):
            run_spmd(program, 4, timeout=60)

    def test_indivisible_in_features(self):
        def program(comm):
            RowParallelLinear(6, 4, comm, np.random.default_rng(0))

        with pytest.raises(ConfigError):
            run_spmd(program, 4, timeout=60)

    def test_parameter_counts_partition_dense(self):
        dense_params = MLP(D, FF, np.random.default_rng(1)).num_parameters()

        def program(comm):
            tp = TensorParallelMLP(D, FF, comm, np.random.default_rng(1))
            # Row bias is replicated; count it once (on rank 0).
            n = tp.num_parameters()
            if comm.rank != 0 and tp.fc_out.bias is not None:
                n -= tp.fc_out.bias.size
            return n

        res = run_spmd(program, 2, timeout=60)
        assert sum(res.returns) == dense_params
