"""Routing-analysis metrics: entropy and specialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.moe import expert_specialization, expert_usage_entropy, routing_entropy


class TestRoutingEntropy:
    def test_one_hot_router_is_zero_bits(self):
        probs = np.zeros((5, 8))
        probs[:, 3] = 1.0
        assert routing_entropy(probs) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_router_is_log2_e(self):
        probs = np.full((5, 8), 1 / 8)
        assert routing_entropy(probs) == pytest.approx(3.0)

    def test_monotone_in_sharpness(self):
        soft = np.full((4, 4), 0.25)
        sharp = np.array([[0.7, 0.1, 0.1, 0.1]] * 4)
        assert routing_entropy(sharp) < routing_entropy(soft)

    def test_rejects_non_distribution(self):
        with pytest.raises(ConfigError):
            routing_entropy(np.ones((3, 4)))
        with pytest.raises(ConfigError):
            routing_entropy(np.zeros((0, 4)))

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_bounded_by_log2_e(self, e):
        rng = np.random.default_rng(e)
        probs = rng.dirichlet(np.ones(e), size=32)
        h = routing_entropy(probs)
        assert 0.0 <= h <= np.log2(e) + 1e-9


class TestUsageEntropy:
    def test_even_usage(self):
        assert expert_usage_entropy(np.array([10, 10, 10, 10])) == pytest.approx(2.0)

    def test_collapsed_usage(self):
        assert expert_usage_entropy(np.array([40, 0, 0, 0])) == pytest.approx(0.0)

    def test_empty_loads(self):
        assert expert_usage_entropy(np.zeros(4)) == 0.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            expert_usage_entropy(np.zeros((2, 2)))


class TestSpecialization:
    def test_disjoint_vocabularies_max_mi(self):
        """Each expert owns half the vocabulary: MI = H(expert) = 1 bit."""
        tokens = np.arange(1000) % 8
        experts = tokens // 4  # tokens 0-3 -> expert 0, 4-7 -> expert 1
        mi = expert_specialization(tokens, experts, vocab_size=8, num_experts=2)
        assert mi == pytest.approx(1.0, abs=1e-9)

    def test_content_independent_routing_zero_mi(self):
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 16, size=20000)
        experts = rng.integers(0, 4, size=20000)  # random gate
        mi = expert_specialization(tokens, experts, vocab_size=16, num_experts=4)
        assert mi < 0.02

    def test_partial_specialization_between(self):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 8, size=10000)
        # 70% content-routed, 30% random.
        experts = np.where(rng.random(10000) < 0.7,
                           tokens // 4, rng.integers(0, 2, size=10000))
        mi = expert_specialization(tokens, experts, vocab_size=8, num_experts=2)
        assert 0.05 < mi < 1.0

    def test_nonnegative(self):
        mi = expert_specialization(np.array([0, 1]), np.array([1, 0]), 2, 2)
        assert mi >= 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            expert_specialization(np.array([0]), np.array([0, 1]), 2, 2)
        with pytest.raises(ConfigError):
            expert_specialization(np.array([5]), np.array([0]), 2, 2)
        with pytest.raises(ConfigError):
            expert_specialization(np.array([0]), np.array([9]), 2, 2)


class TestOnRealGates:
    def test_random_gate_less_specialized_than_topk(self):
        from repro.data import SyntheticCorpus
        from repro.models import Embedding, Linear
        from repro.moe import make_gate
        from repro.tensor import Tensor

        rng = np.random.default_rng(3)
        corpus = SyntheticCorpus(vocab_size=64, seed=3)
        tokens = corpus.sample(2048)
        emb = Embedding(64, 16, rng)
        router = Linear(16, 8, rng, bias=False)
        logits = router(emb(tokens.reshape(1, -1)).reshape(-1, 16))

        topk = make_gate("topk", 8)(logits, np.random.default_rng(0))
        rand = make_gate("random", 8)(logits, np.random.default_rng(0))
        mi_topk = expert_specialization(tokens, topk.indices[:, 0], 64, 8)
        mi_rand = expert_specialization(tokens, rand.indices[:, 0], 64, 8)
        # Content-based routing is tied to token identity; random is not.
        assert mi_topk > 5 * max(mi_rand, 1e-3)
