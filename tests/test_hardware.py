"""Machine model: specs, headline core counts, rooflines."""

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    SUNWAY_NODE,
    SW26010_PRO,
    MachineSpec,
    NodeSpec,
    ProcessorSpec,
    Roofline,
    kernel_time,
    laptop_machine,
    node_roofline,
    sunway_machine,
)


class TestProcessorSpec:
    def test_sw26010_core_count(self):
        # 6 CGs x (1 MPE + 64 CPEs) = 390 cores.
        assert SW26010_PRO.cores == 390

    def test_flops_lookup(self):
        assert SW26010_PRO.flops("fp64") == pytest.approx(14.0e12)
        assert SW26010_PRO.flops("fp16") > SW26010_PRO.flops("fp32")

    def test_unknown_dtype(self):
        with pytest.raises(ConfigError):
            SW26010_PRO.flops("int8")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorSpec(
                name="bad", core_groups=0, mpe_per_group=1, cpe_per_group=1,
                peak_flops={"fp32": 1.0}, memory_bytes=1, memory_bandwidth=1,
            )
        with pytest.raises(ConfigError):
            ProcessorSpec(
                name="bad", core_groups=1, mpe_per_group=1, cpe_per_group=1,
                peak_flops={}, memory_bytes=1, memory_bandwidth=1,
            )


class TestMachine:
    def test_headline_37_million_cores(self):
        """The paper's title claim: 96,000 nodes > 37 million cores."""
        machine = sunway_machine(96_000)
        assert machine.total_cores == 96_000 * 390
        assert machine.total_cores > 37_000_000

    def test_peak_flops_scales_with_nodes(self):
        m1 = sunway_machine(100)
        m2 = sunway_machine(200)
        assert m2.peak_flops("fp16") == pytest.approx(2 * m1.peak_flops("fp16"))

    def test_sustained_below_peak(self):
        m = sunway_machine(10)
        assert m.sustained_flops("fp32") < m.peak_flops("fp32")

    def test_headline_fp16_exaflops_class(self):
        """Full machine peak fp16 is in the multi-EFLOPS class."""
        m = sunway_machine(96_000)
        assert m.peak_flops("fp16") > 1e18

    def test_with_nodes(self):
        m = sunway_machine(96_000).with_nodes(128)
        assert m.num_nodes == 128
        assert m.node is SUNWAY_NODE

    def test_invalid_machine(self):
        with pytest.raises(ConfigError):
            MachineSpec(name="x", node=SUNWAY_NODE, num_nodes=0)
        with pytest.raises(ConfigError):
            MachineSpec(name="x", node=SUNWAY_NODE, num_nodes=1, compute_efficiency=0.0)

    def test_laptop_machine_small(self):
        m = laptop_machine()
        assert m.total_cores < 100

    def test_node_spec_multiprocessor(self):
        node = NodeSpec(processor=SW26010_PRO, processors_per_node=2)
        assert node.cores == 780
        assert node.flops("fp64") == pytest.approx(28e12)


class TestRoofline:
    def test_ridge_point(self):
        r = Roofline(peak_flops=1e12, memory_bandwidth=1e11)
        assert r.ridge_intensity == pytest.approx(10.0)

    def test_memory_bound_below_ridge(self):
        r = Roofline(peak_flops=1e12, memory_bandwidth=1e11)
        assert r.attainable(1.0) == pytest.approx(1e11)

    def test_compute_bound_above_ridge(self):
        r = Roofline(peak_flops=1e12, memory_bandwidth=1e11)
        assert r.attainable(100.0) == pytest.approx(1e12)

    def test_zero_intensity(self):
        r = Roofline(peak_flops=1e12, memory_bandwidth=1e11)
        assert r.attainable(0.0) == 0.0

    def test_time_for_max_of_roofs(self):
        r = Roofline(peak_flops=1e12, memory_bandwidth=1e11)
        # 1e12 flops (1 s of compute) over 1e9 bytes (10 ms of memory).
        assert r.time_for(1e12, 1e9) == pytest.approx(1.0)
        # 1e9 flops (1 ms) over 1e12 bytes (10 s).
        assert r.time_for(1e9, 1e12) == pytest.approx(10.0)

    def test_node_roofline_efficiency(self):
        full = node_roofline(SUNWAY_NODE, "fp32", efficiency=1.0)
        half = node_roofline(SUNWAY_NODE, "fp32", efficiency=0.5)
        assert half.peak_flops == pytest.approx(full.peak_flops / 2)

    def test_kernel_time_positive(self):
        assert kernel_time(SUNWAY_NODE, "fp16", 1e12, 1e9) > 0

    def test_negative_inputs_rejected(self):
        r = Roofline(peak_flops=1.0, memory_bandwidth=1.0)
        with pytest.raises(ConfigError):
            r.time_for(-1.0, 0.0)
        with pytest.raises(ConfigError):
            r.attainable(-1.0)
