"""Chunked async expert dispatch (`overlap_chunks`) is bit-identical to
the blocking path — forward and backward — for every chunking width."""

import numpy as np
import pytest

from repro.parallel import DistributedMoELayer
from repro.simmpi import run_spmd
from repro.tensor import Tensor

NUM_EXPERTS, D_MODEL, D_FF = 8, 8, 16


def _build(comm, overlap_chunks, top_k, capacity):
    return DistributedMoELayer(
        D_MODEL, D_FF, NUM_EXPERTS, comm,
        shared_rng=np.random.default_rng(1), seed=0,
        gate="topk", top_k=top_k, aux_weight=1e-2,
        capacity_factor=capacity,
        overlap_chunks=overlap_chunks,
    )


def _forward_backward(comm, overlap_chunks, top_k, capacity, xdata):
    layer = _build(comm, overlap_chunks, top_k, capacity)
    x = Tensor(xdata.copy(), requires_grad=True)
    out = layer(x)
    loss = (out * out).sum() + layer.last_aux_loss
    loss.backward()
    grads = {
        name: p.grad.copy()
        for name, p in sorted(layer.named_parameters())
        if p.grad is not None
    }
    return out.data.copy(), x.grad.copy(), grads, layer.last_local_rows


@pytest.mark.parametrize("ep_size", [1, 2, 4])
@pytest.mark.parametrize("overlap_chunks", [1, 2, 4])
def test_chunked_bitwise_identical(ep_size, overlap_chunks):
    def program(comm):
        xdata = np.random.default_rng(10 + comm.rank).normal(size=(6, D_MODEL))
        base = _forward_backward(comm, 1, 2, None, xdata)
        chunked = _forward_backward(comm, overlap_chunks, 2, None, xdata)
        return base, chunked

    for base, chunked in run_spmd(program, ep_size).returns:
        out_b, gx_b, grads_b, rows_b = base
        out_c, gx_c, grads_c, rows_c = chunked
        assert np.array_equal(out_b, out_c)
        assert np.array_equal(gx_b, gx_c)
        assert grads_b.keys() == grads_c.keys()
        for name in grads_b:
            assert np.array_equal(grads_b[name], grads_c[name]), name
        assert rows_b == rows_c


@pytest.mark.parametrize("top_k", [1, 2])
def test_chunked_with_capacity_and_topk(top_k):
    """Dropped tokens (capacity) and multi-slot routing keep bit-equality."""

    def program(comm):
        xdata = np.random.default_rng(20 + comm.rank).normal(size=(8, D_MODEL))
        base = _forward_backward(comm, 1, top_k, 1.25, xdata)
        chunked = _forward_backward(comm, 4, top_k, 1.25, xdata)
        return base, chunked

    for base, chunked in run_spmd(program, 4).returns:
        assert np.array_equal(base[0], chunked[0])
        assert np.array_equal(base[1], chunked[1])
        for name in base[2]:
            assert np.array_equal(base[2][name], chunked[2][name]), name


def test_chunks_clamped_to_local_experts():
    """overlap_chunks beyond the local expert count degrades gracefully."""

    def program(comm):
        xdata = np.random.default_rng(3).normal(size=(4, D_MODEL))
        base = _forward_backward(comm, 1, 1, None, xdata)
        chunked = _forward_backward(comm, 64, 1, None, xdata)
        return np.array_equal(base[0], chunked[0])

    assert all(run_spmd(program, 4).returns)


def test_chunked_hook_rows_sum_to_unchunked():
    """The per-chunk compute hook charges exactly the unchunked rows."""

    def program(comm):
        seen = []
        layer = DistributedMoELayer(
            D_MODEL, D_FF, NUM_EXPERTS, comm,
            shared_rng=np.random.default_rng(1), seed=0,
            gate="topk", top_k=1, overlap_chunks=4,
            compute_hook=seen.append,
        )
        layer(Tensor(np.random.default_rng(0).normal(size=(6, D_MODEL))))
        return len(seen), sum(seen), layer.last_local_rows

    for calls, hooked_rows, total_rows in run_spmd(program, 2).returns:
        assert calls == 4  # one hook call per chunk
        assert hooked_rows == total_rows


def test_chunked_overlap_shows_on_virtual_clock():
    """With modelled compute inside the pipeline, the chunked forward
    finishes earlier in virtual time than the blocking one."""
    from repro.network import sunway_network

    per_row_seconds = 5e-5

    def make_program(overlap_chunks):
        def program(comm):
            layer = DistributedMoELayer(
                64, 256, NUM_EXPERTS, comm,
                shared_rng=np.random.default_rng(1), seed=0,
                gate="topk", top_k=2, overlap_chunks=overlap_chunks,
                compute_hook=lambda rows: comm.advance(rows * per_row_seconds),
            )
            x = Tensor(np.random.default_rng(30 + comm.rank).normal(size=(64, 64)))
            out = layer(x)
            return out.data.copy(), comm.clock

        return program

    net = sunway_network(4, supernode_size=2)
    blocking = run_spmd(make_program(1), 4, network=net)
    chunked = run_spmd(make_program(4), 4, network=net)
    t_blocking = max(t for _, t in blocking.returns)
    t_chunked = max(t for _, t in chunked.returns)
    assert t_chunked < t_blocking
    for (out_b, _), (out_c, _) in zip(blocking.returns, chunked.returns):
        assert np.array_equal(out_b, out_c)
    assert chunked.context.stats.overlapped_seconds["ialltoall"] > 0


def test_training_run_overlap_is_bitwise_and_faster():
    """End to end through the runner: overlap_chunks=4 must keep the loss
    trajectory bit-identical to blocking while finishing earlier in
    virtual time, with nonzero hidden-comm accounting."""
    from repro.models.configs import ModelConfig
    from repro.parallel.runner import TrainingRunConfig, run_distributed_training

    # Large enough that bandwidth + modelled compute dominate the extra
    # per-chunk latency; tiny payloads would make chunking a net loss.
    model = ModelConfig(
        vocab_size=128, max_seq_len=64, d_model=128, d_ff=512, n_layers=2,
        n_heads=4, num_experts=8, top_k=2, moe_every=1,
    )

    def run(overlap_chunks):
        return run_distributed_training(TrainingRunConfig(
            model=model, world_size=4, ep_size=4, num_steps=2,
            batch_size=8, seq_len=32, overlap_chunks=overlap_chunks,
        ))

    blocking, overlapped = run(1), run(4)
    assert overlapped.losses == blocking.losses  # bitwise-equal floats
    assert overlapped.simulated_time < blocking.simulated_time
    stats = overlapped.context.stats
    hidden = sum(stats.overlapped_seconds.values())
    assert hidden > 0
    assert stats.overlapped_seconds["ialltoall"] > 0
    assert stats.overlapped_seconds["iallreduce"] > 0
    # Byte totals must not change when only the schedule changes.
    assert (overlapped.traffic["total_bytes"] == blocking.traffic["total_bytes"])
