"""Module system, layers, attention, MoE layer, and full model tests."""

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigError
from repro.models import (
    MLP,
    CausalSelfAttention,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MoELanguageModel,
    MoELayer,
    Parameter,
    bagualu_14_5t,
    bagualu_174t,
    bagualu_1_93t,
    build_model,
    small_config,
    tiny_config,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))

        m = M()
        assert [n for n, _ in m.named_parameters()] == ["w"]

    def test_nested_modules(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.b = Parameter(np.zeros(1))

        names = [n for n, _ in Outer().named_parameters()]
        assert names == ["b", "inner.w"]

    def test_module_list_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.register_module_list("items", [Linear(2, 2, RNG) for _ in range(3)])

        m = M()
        assert len(m.parameters()) == 6  # 3 x (weight, bias)

    def test_num_parameters(self):
        lin = Linear(4, 3, RNG)
        assert lin.num_parameters() == 4 * 3 + 3

    def test_train_eval_recursive(self):
        model = build_model(tiny_config())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        a = Linear(3, 3, np.random.default_rng(1))
        b = Linear(3, 3, np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_strict_mismatch(self):
        a = Linear(3, 3, RNG)
        with pytest.raises(CheckpointError):
            a.load_state_dict({"weight": np.zeros((3, 3))})  # missing "bias"

    def test_state_dict_shape_mismatch(self):
        a = Linear(3, 3, RNG)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(CheckpointError):
            a.load_state_dict(state)

    def test_zero_grad(self):
        lin = Linear(2, 2, RNG)
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        lin = Linear(4, 6, RNG)
        out = lin(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 3, 6)

    def test_linear_no_bias(self):
        lin = Linear(4, 2, RNG, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_linear_flops(self):
        assert Linear(4, 6, RNG).flops_per_token == 48

    def test_embedding_forward(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(RNG.normal(size=(4, 8)) * 5 + 3)
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)

    def test_mlp_shapes(self):
        mlp = MLP(8, 32, RNG)
        out = mlp(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 8)

    def test_mlp_flops(self):
        assert MLP(8, 32, RNG).flops_per_token == 2 * 8 * 32 * 2

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            Linear(0, 4, RNG)
        with pytest.raises(ConfigError):
            LayerNorm(0)


class TestAttention:
    def test_output_shape(self):
        attn = CausalSelfAttention(16, 4, RNG)
        out = attn(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_causality(self):
        """Changing a future token must not change past outputs."""
        attn = CausalSelfAttention(8, 2, np.random.default_rng(3))
        x1 = RNG.normal(size=(1, 6, 8)).astype(np.float32)
        x2 = x1.copy()
        x2[0, 5] += 10.0  # perturb the last position only
        o1 = attn(Tensor(x1)).data
        o2 = attn(Tensor(x2)).data
        assert np.allclose(o1[0, :5], o2[0, :5], atol=1e-5)
        assert not np.allclose(o1[0, 5], o2[0, 5])

    def test_heads_must_divide(self):
        with pytest.raises(ConfigError):
            CausalSelfAttention(10, 3, RNG)

    def test_gradients_flow(self):
        attn = CausalSelfAttention(8, 2, RNG)
        x = Tensor(RNG.normal(size=(1, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None


class TestMoELayer:
    def _layer(self, **kw):
        defaults = dict(
            d_model=8, d_ff=16, num_experts=4, rng=np.random.default_rng(5),
            gate="topk", top_k=1,
        )
        defaults.update(kw)
        return MoELayer(**defaults)

    def test_output_shape_2d(self):
        layer = self._layer()
        out = layer(Tensor(RNG.normal(size=(10, 8))))
        assert out.shape == (10, 8)

    def test_output_shape_3d(self):
        layer = self._layer()
        out = layer(Tensor(RNG.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_aux_loss_populated(self):
        layer = self._layer()
        layer(Tensor(RNG.normal(size=(10, 8))))
        assert layer.last_aux_loss is not None
        assert layer.last_load is not None
        assert layer.last_load.sum() == 10

    def test_single_expert_equals_mlp(self):
        """With one expert the MoE layer must reduce to its MLP."""
        layer = self._layer(num_experts=1)
        x = Tensor(RNG.normal(size=(6, 8)))
        out = layer(x)
        expected = layer.experts[0](x)
        assert np.allclose(out.data, expected.data, atol=1e-5)

    def test_capacity_drops_tokens(self):
        layer = self._layer(capacity_factor=0.25)
        # Force skew: all tokens similar -> same expert preferred.
        x = Tensor(np.tile(RNG.normal(size=(1, 8)), (16, 1)))
        layer(x)
        assert layer.last_drop_fraction > 0

    def test_gradients_reach_all_touched_experts(self):
        layer = self._layer()
        x = Tensor(RNG.normal(size=(32, 8)), requires_grad=True)
        layer(x).sum().backward()
        touched = [e for e in range(4) if layer.last_load[e] > 0]
        for e in touched:
            assert layer.experts[e].fc_in.weight.grad is not None
        # The router is trained through the combine weights even without
        # the aux loss.
        assert layer.router.weight.grad is not None

    def test_aux_loss_backward_reaches_router(self):
        layer = self._layer()
        x = Tensor(RNG.normal(size=(16, 8)))
        out = layer(x)
        (out.sum() + layer.last_aux_loss).backward()
        assert layer.router.weight.grad is not None

    def test_expert_params_marked(self):
        layer = self._layer()
        expert_flags = [getattr(p, "is_expert", False) for p in layer.experts[0].parameters()]
        assert all(expert_flags)
        assert not getattr(layer.router.weight, "is_expert", False)

    def test_flops_property(self):
        layer = self._layer(top_k=1)
        assert layer.flops_per_token == 2 * 8 * 4 + 2 * 8 * 16 * 2

    def test_invalid_input_ndim(self):
        with pytest.raises(ConfigError):
            self._layer()(Tensor(np.zeros(8)))


class TestConfigs:
    def test_tiny_params_match_model(self):
        cfg = tiny_config()
        assert build_model(cfg).num_parameters() == cfg.total_params

    def test_small_params_match_model(self):
        cfg = small_config()
        assert build_model(cfg).num_parameters() == cfg.total_params

    def test_moe_every_two(self):
        cfg = tiny_config(moe_every=2)
        model = build_model(cfg)
        assert model.num_parameters() == cfg.total_params
        assert len(model.moe_layers()) == cfg.num_moe_layers == 1

    def test_headline_parameter_counts(self):
        """T1: totals land on the paper's headline figures (within 1%)."""
        assert bagualu_1_93t().total_params == pytest.approx(1.93e12, rel=0.01)
        assert bagualu_14_5t().total_params == pytest.approx(14.5e12, rel=0.01)
        assert bagualu_174t().total_params == pytest.approx(174e12, rel=0.01)

    def test_active_params_much_smaller_than_total(self):
        cfg = bagualu_14_5t()
        assert cfg.active_params_per_token < cfg.total_params / 100

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            tiny_config(d_model=30)  # not divisible by heads
        with pytest.raises(ConfigError):
            tiny_config(top_k=100)

    def test_scaled_copy(self):
        cfg = tiny_config().scaled(n_layers=4)
        assert cfg.n_layers == 4
        assert tiny_config().n_layers == 2


class TestLanguageModel:
    def test_forward_shape(self):
        cfg = tiny_config()
        model = build_model(cfg)
        logits = model(RNG.integers(0, cfg.vocab_size, size=(2, 8)))
        assert logits.shape == (2, 8, cfg.vocab_size)

    def test_loss_near_uniform_at_init(self):
        cfg = tiny_config()
        model = build_model(cfg)
        tokens = RNG.integers(0, cfg.vocab_size, size=(2, 8))
        loss = model.loss(tokens, tokens)
        assert abs(loss.item() - np.log(cfg.vocab_size)) < 0.5

    def test_all_params_receive_grads(self):
        cfg = tiny_config()
        model = build_model(cfg)
        tokens = RNG.integers(0, cfg.vocab_size, size=(4, 8))
        model.loss(tokens, tokens).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        # Untouched experts may legitimately lack grads; everything else must have them.
        assert all("experts" in n for n in missing)

    def test_seed_reproducibility(self):
        a = build_model(tiny_config(), seed=9)
        b = build_model(tiny_config(), seed=9)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_different_seeds_differ(self):
        a = build_model(tiny_config(), seed=1)
        b = build_model(tiny_config(), seed=2)
        assert not np.allclose(a.tok_emb.weight.data, b.tok_emb.weight.data)

    def test_sequence_too_long_rejected(self):
        cfg = tiny_config()
        model = build_model(cfg)
        with pytest.raises(ConfigError):
            model(np.zeros((1, cfg.max_seq_len + 1), dtype=np.int64))

    def test_expert_load_tracked(self):
        cfg = tiny_config()
        model = build_model(cfg)
        model(RNG.integers(0, cfg.vocab_size, size=(2, 8)))
        load = model.expert_load()
        assert load is not None
        assert load.sum() == 2 * 8 * cfg.top_k * len(model.moe_layers())
