"""Autograd correctness of the primitive ops (gradcheck against numerics)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, gradcheck, no_grad, ones, tensor, zeros
from repro.tensor import ops as T

RNG = np.random.default_rng(42)


def t64(shape, scale=1.0):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True, dtype="fp64")


class TestConstruction:
    def test_tensor_shape_dtype(self):
        x = tensor(np.zeros((2, 3)))
        assert x.shape == (2, 3)
        assert x.dtype.name == "fp32"
        assert x.data.dtype == np.float32

    def test_zeros_ones(self):
        assert np.all(zeros((2, 2)).data == 0)
        assert np.all(ones(3).data == 1)

    def test_item_scalar(self):
        assert tensor(5.0).item() == 5.0

    def test_item_nonscalar_raises(self):
        with pytest.raises(ShapeError):
            tensor(np.zeros(3)).item()

    def test_detach_cuts_graph(self):
        x = t64((2,))
        y = (x * 2.0).detach()
        assert y._parents == ()
        assert not y.requires_grad


class TestElementwiseGrads:
    def test_add(self):
        gradcheck(lambda ins: ins[0] + ins[1], [t64((3, 4)), t64((3, 4))])

    def test_add_broadcast(self):
        gradcheck(lambda ins: ins[0] + ins[1], [t64((3, 4)), t64((4,))])

    def test_add_scalar_broadcast(self):
        gradcheck(lambda ins: ins[0] + ins[1], [t64((2, 3)), t64(())])

    def test_sub(self):
        gradcheck(lambda ins: ins[0] - ins[1], [t64((2, 5)), t64((2, 5))])

    def test_mul(self):
        gradcheck(lambda ins: ins[0] * ins[1], [t64((3, 3)), t64((3, 3))])

    def test_mul_broadcast_row(self):
        gradcheck(lambda ins: ins[0] * ins[1], [t64((4, 2)), t64((1, 2))])

    def test_div(self):
        a, b = t64((3,)), t64((3,))
        b.data = np.abs(b.data) + 1.0  # keep away from zero
        gradcheck(lambda ins: ins[0] / ins[1], [a, b])

    def test_neg(self):
        gradcheck(lambda ins: -ins[0], [t64((4,))])

    def test_power(self):
        x = t64((3,))
        x.data = np.abs(x.data) + 0.5
        gradcheck(lambda ins: ins[0] ** 3.0, [x])

    def test_sqrt(self):
        x = t64((3,))
        x.data = np.abs(x.data) + 1.0
        gradcheck(lambda ins: ins[0].sqrt(), [x], rtol=1e-3)

    def test_exp_log_tanh(self):
        gradcheck(lambda ins: T.exp(ins[0]), [t64((3,), 0.5)])
        x = t64((3,))
        x.data = np.abs(x.data) + 0.5
        gradcheck(lambda ins: T.log(ins[0]), [x])
        gradcheck(lambda ins: T.tanh(ins[0]), [t64((3,))])

    def test_sigmoid(self):
        gradcheck(lambda ins: T.sigmoid(ins[0]), [t64((5,))])

    def test_maximum(self):
        gradcheck(lambda ins: T.maximum(ins[0], ins[1]), [t64((6,)), t64((6,))], atol=1e-4)

    def test_clip(self):
        gradcheck(lambda ins: T.clip(ins[0], -0.5, 0.5), [t64((8,))], atol=1e-4)

    def test_where(self):
        cond = RNG.random(6) > 0.5
        gradcheck(lambda ins: T.where(cond, ins[0], ins[1]), [t64((6,)), t64((6,))])


class TestMatmulGrads:
    def test_2d(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((3, 4)), t64((4, 2))])

    def test_batched(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((2, 3, 4)), t64((2, 4, 2))])

    def test_broadcast_batch(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((2, 3, 4)), t64((4, 5))])

    def test_vec_vec(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((4,)), t64((4,))])

    def test_vec_mat(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((4,)), t64((4, 3))])

    def test_mat_vec(self):
        gradcheck(lambda ins: ins[0] @ ins[1], [t64((3, 4)), t64((4,))])

    def test_matmul_requires_tensors(self):
        with pytest.raises(ShapeError):
            T.matmul(t64((2, 2)), np.zeros((2, 2)))  # type: ignore[arg-type]


class TestShapeGrads:
    def test_reshape(self):
        gradcheck(lambda ins: ins[0].reshape(6), [t64((2, 3))])

    def test_transpose_default(self):
        gradcheck(lambda ins: ins[0].transpose(), [t64((2, 3))])

    def test_transpose_axes(self):
        gradcheck(lambda ins: ins[0].transpose(1, 0, 2), [t64((2, 3, 4))])

    def test_getitem_slice(self):
        gradcheck(lambda ins: ins[0][1:3], [t64((5, 2))])

    def test_getitem_fancy_repeated(self):
        idx = np.array([0, 1, 1, 2])
        gradcheck(lambda ins: ins[0][idx], [t64((3, 2))])

    def test_concat(self):
        gradcheck(lambda ins: T.concat([ins[0], ins[1]], axis=0), [t64((2, 3)), t64((4, 3))])

    def test_concat_axis1(self):
        gradcheck(lambda ins: T.concat([ins[0], ins[1]], axis=1), [t64((2, 3)), t64((2, 2))])

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            T.concat([], axis=0)


class TestReductionGrads:
    def test_sum_all(self):
        gradcheck(lambda ins: ins[0].sum(), [t64((3, 4))])

    def test_sum_axis_keepdims(self):
        gradcheck(lambda ins: ins[0].sum(axis=1, keepdims=True), [t64((3, 4))])

    def test_sum_axis(self):
        gradcheck(lambda ins: ins[0].sum(axis=0), [t64((3, 4))])

    def test_mean(self):
        gradcheck(lambda ins: ins[0].mean(), [t64((4, 2))])

    def test_mean_axis(self):
        gradcheck(lambda ins: ins[0].mean(axis=1), [t64((4, 2))])

    def test_max(self):
        x = t64((3, 5))
        gradcheck(lambda ins: T.max_(ins[0], axis=1), [x], atol=1e-4)


class TestAutogradMachinery:
    def test_backward_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True, dtype="fp64")
        y = x * x  # dy/dx = 2x = 4
        y.backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True, dtype="fp64")
        (x * 3.0).backward()
        (x * 5.0).backward()
        assert x.grad[0] == pytest.approx(8.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True, dtype="fp64")
        (x * 3.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._parents == ()

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True, dtype="fp64")
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_backward_wrong_shape_grad(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ShapeError):
            x.backward(np.zeros(3))

    def test_diamond_graph_grad(self):
        x = Tensor([3.0], requires_grad=True, dtype="fp64")
        a = x * 2.0
        b = x * 5.0
        (a + b).backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_astype_roundtrip_grad(self):
        x = t64((3,))
        gradcheck(lambda ins: ins[0].astype("fp64") * 2.0, [x])

    def test_mixed_dtype_promotes(self):
        a = Tensor([1.0], dtype="fp16")
        b = Tensor([1.0], dtype="fp32")
        assert (a + b).dtype.name == "fp32"

    def test_fp16_op_quantizes_output(self):
        a = Tensor([60000.0], dtype="fp16")
        out = a + a  # 120000 overflows fp16
        assert np.isinf(out.data[0])
