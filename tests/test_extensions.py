"""Extension features: evaluation, phase timing, overlap knob,
multi-domain corpus, optimizer-state distributed checkpoints."""

import numpy as np
import pytest

from repro.data import ShardedLoader, SyntheticCorpus
from repro.errors import CheckpointError, ConfigError
from repro.hardware import sunway_machine
from repro.models import bagualu_14_5t, build_model, tiny_config
from repro.network import sunway_network
from repro.parallel import (
    MoDaTrainer,
    build_groups,
    build_moda_model,
    load_distributed,
    save_distributed,
)
from repro.perf import ParallelPlan, StepModel
from repro.simmpi import run_spmd
from repro.train import Adam, Trainer


class TestEvaluate:
    def _setup(self):
        cfg = tiny_config()
        model = build_model(cfg, seed=1)
        corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, predictability=0.9, seed=2)
        loader = ShardedLoader(corpus, 4, 8)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3))
        return model, loader, trainer

    def test_returns_loss_and_perplexity(self):
        _, loader, trainer = self._setup()
        metrics = trainer.evaluate(loader, 3)
        assert metrics["perplexity"] == pytest.approx(np.exp(metrics["loss"]), rel=1e-6)
        assert metrics["loss"] > 0

    def test_does_not_touch_grads_or_steps(self):
        model, loader, trainer = self._setup()
        trainer.evaluate(loader, 2)
        assert trainer.step_count == 0
        assert all(p.grad is None for p in model.parameters())

    def test_restores_training_mode(self):
        model, loader, trainer = self._setup()
        trainer.evaluate(loader, 1)
        assert model.training

    def test_eval_improves_with_training(self):
        _, loader, trainer = self._setup()
        eval_loader = ShardedLoader(
            SyntheticCorpus(vocab_size=128, predictability=0.9, seed=2), 4, 8,
        )
        before = trainer.evaluate(eval_loader, 3, start_step=1000)["loss"]
        trainer.fit(loader, 40)
        after = trainer.evaluate(eval_loader, 3, start_step=1000)["loss"]
        assert after < before

    def test_invalid_steps(self):
        _, loader, trainer = self._setup()
        with pytest.raises(ConfigError):
            trainer.evaluate(loader, 0)


class TestPhaseTiming:
    def test_extras_populated_and_consistent(self):
        cfg = tiny_config(num_experts=4)

        def program(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(cfg, groups, seed=3)
            trainer = MoDaTrainer(model, Adam(model.parameters(), lr=1e-3), groups)
            corpus = SyntheticCorpus(vocab_size=cfg.vocab_size, seed=1)
            loader = ShardedLoader(corpus, 2, 8, dp_rank=comm.rank, dp_size=comm.size)
            res = trainer.train_step(loader.get_batch(0))
            return res.extras

        out = run_spmd(program, 4, network=sunway_network(4), timeout=300)
        for extras in out.returns:
            assert set(extras) == {"t_forward", "t_backward", "t_grad_sync"}
            assert all(v >= 0 for v in extras.values())
            # Communication happened in every phase of a distributed step.
            assert extras["t_grad_sync"] > 0


class TestOverlapKnob:
    def test_overlap_reduces_step_time(self):
        cfg = bagualu_14_5t()
        sm = StepModel(cfg, sunway_machine(96000), sunway_network(96000))
        base = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=1, seq_len=2048)
        lap = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=1, seq_len=2048,
                           overlap=1.0)
        assert sm.step_time(lap) < sm.step_time(base)

    def test_full_overlap_hides_at_most_sync(self):
        cfg = bagualu_14_5t()
        sm = StepModel(cfg, sunway_machine(96000), sunway_network(96000))
        base = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=1, seq_len=2048)
        lap = ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=1, seq_len=2048,
                           overlap=1.0)
        bd = sm.step_breakdown(base)
        saved = sm.step_time(base) - sm.step_time(lap)
        assert saved <= bd.dense_allreduce + bd.expert_allreduce + 1e-9

    def test_overlap_monotone(self):
        cfg = bagualu_14_5t()
        sm = StepModel(cfg, sunway_machine(96000), sunway_network(96000))
        times = [
            sm.step_time(
                ParallelPlan(num_nodes=96000, ep_size=96000, micro_batch=1,
                             seq_len=2048, overlap=o)
            )
            for o in (0.0, 0.5, 1.0)
        ]
        assert times[0] >= times[1] >= times[2]

    def test_invalid_overlap(self):
        with pytest.raises(ConfigError):
            ParallelPlan(num_nodes=4, ep_size=4, overlap=1.5)


class TestMultiDomainCorpus:
    def test_single_domain_backward_compatible(self):
        c = SyntheticCorpus(vocab_size=64, seed=1)
        assert c.num_domains == 1
        assert np.array_equal(c.successor, c.successors[0])

    def test_domains_have_distinct_tables(self):
        c = SyntheticCorpus(vocab_size=64, seed=1, num_domains=4)
        assert not np.array_equal(c.successors[0], c.successors[1])

    def test_stream_follows_its_domain_table(self):
        c = SyntheticCorpus(vocab_size=32, predictability=1.0, seed=2, num_domains=3)
        for stream in range(5):
            s = c.sample(200, stream=stream)
            table = c.successors[c.domain_of_stream(stream)]
            follows = sum(s[i + 1] == table[s[i]] for i in range(len(s) - 1))
            assert follows == len(s) - 1

    def test_domains_assigned_stably(self):
        c = SyntheticCorpus(vocab_size=32, seed=2, num_domains=3)
        assert c.domain_of_stream(7) == c.domain_of_stream(7)

    def test_multiple_domains_used(self):
        c = SyntheticCorpus(vocab_size=32, seed=2, num_domains=3)
        domains = {c.domain_of_stream(s) for s in range(50)}
        assert len(domains) == 3

    def test_invalid(self):
        with pytest.raises(ConfigError):
            SyntheticCorpus(num_domains=0)


class TestOptimizerDistCheckpoint:
    CFG = tiny_config(num_experts=4)

    def _train_and_save(self, tmp_path, comm):
        groups = build_groups(comm, 2)
        model = build_moda_model(self.CFG, groups, seed=5)
        opt = Adam(model.parameters(), lr=1e-3)
        trainer = MoDaTrainer(model, opt, groups)
        corpus = SyntheticCorpus(vocab_size=self.CFG.vocab_size, seed=1)
        loader = ShardedLoader(corpus, 2, 8, dp_rank=comm.rank, dp_size=comm.size)
        for s in range(2):
            trainer.train_step(loader.get_batch(s))
        save_distributed(tmp_path / "ckpt", model, groups, step=2, optimizer=opt)
        return opt.state_dict()

    def test_optimizer_roundtrip(self, tmp_path):
        def save_program(comm):
            state = self._train_and_save(tmp_path, comm)
            return sorted(state)

        saved = run_spmd(save_program, 4, timeout=300)

        def load_program(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(self.CFG, groups, seed=77)
            opt = Adam(model.parameters(), lr=1e-3)
            load_distributed(
                tmp_path / "ckpt", model, optimizer=opt,
                world_rank=comm.rank, world_size=comm.size,
            )
            return opt.step_count

        loaded = run_spmd(load_program, 4, timeout=300)
        assert all(c == 2 for c in loaded.returns)
        assert saved.returns[0]  # state keys existed

    def test_optimizer_restore_across_world_sizes(self, tmp_path):
        # Format 2 keys optimizer slots by global parameter name, so a
        # world-4 snapshot restores into a world-2 run (the elastic path);
        # the legacy world_rank/world_size coords are accepted and ignored.
        run_spmd(lambda c: self._train_and_save(tmp_path, c), 4, timeout=300)

        def shrunk_load(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(self.CFG, groups, seed=0)
            opt = Adam(model.parameters(), lr=1e-3)
            load_distributed(tmp_path / "ckpt", model, optimizer=opt,
                             world_rank=comm.rank, world_size=comm.size)
            return opt.step_count

        loaded = run_spmd(shrunk_load, 2, timeout=300)
        assert loaded.returns == [2, 2]

    def test_optimizer_restore_without_coords(self, tmp_path):
        run_spmd(lambda c: self._train_and_save(tmp_path, c), 4, timeout=300)

        def load_no_coords(comm):
            groups = build_groups(comm, 2)
            model = build_moda_model(self.CFG, groups, seed=0)
            opt = Adam(model.parameters(), lr=1e-3)
            load_distributed(tmp_path / "ckpt", model, optimizer=opt)
            return opt.step_count

        loaded = run_spmd(load_no_coords, 4, timeout=300)
        assert all(c == 2 for c in loaded.returns)
