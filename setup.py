"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in offline environments that lack the ``wheel``
package (``python setup.py develop`` / ``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Laptop-scale reproduction of BaGuaLu (PPoPP'22): brain-scale MoE training on a simulated Sunway-class machine",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
